//! The system performance engine.
//!
//! Costs a recorded [`Workload`] with the paper's Fig. 7 methodology:
//!
//! > "We start with a synthetic analysis, which tells us how many cycles
//! > would be needed if every lane were active in every cycle (Active).
//! > We then look at lanes that are inactive because their associated
//! > scanner is processing an all-zero vector (Scan) and lanes that are
//! > waiting for data to be loaded from or stored to DRAM (Load/Store).
//! > For the synthetic analysis, load/store time assumes zero-latency,
//! > infinite-bandwidth DRAM. Next, our synthetic analysis shows lanes
//! > that are underused because vectorized loops are too short (Vector
//! > Length) or because workload tiling generates unevenly-sized tiles
//! > (Imbalance). We then simulate, adding in on-chip pipelining and
//! > network effects (Network), bank conflicts (SRAM), and the Ramulator
//! > HBM2E model (DRAM). By adding these one at a time, we identify the
//! > cycles that are lost to each stall source."
//!
//! The SRAM component replays each tile's *real* (sampled) address
//! vectors through the cycle-level SpMU of [`capstan_arch::spmu`]; the
//! Network component routes the real shuffle traffic through the
//! butterfly model; the DRAM component prices the real traffic against
//! the configured memory system.
//!
//! # Memory-timing modes
//!
//! The DRAM component supports two timing modes, selected by
//! [`CapstanConfig::mem_timing`]:
//!
//! * [`MemTiming::Analytic`] (default): traffic is priced in closed form
//!   by [`DramModel::transfer_cycles`] — streaming bytes at the
//!   streaming efficiency, random and atomic bytes at the random
//!   efficiency. Fast, and the mode every committed golden value was
//!   captured under.
//! * [`MemTiming::CycleLevel`]: each tile's traffic is replayed through
//!   [`MemSysSim`] — [`CapstanConfig::mem_channels`] region channels
//!   (banked DRAM channels behind a deterministic crossbar) for
//!   streaming/random bursts plus per-region
//!   [`capstan_arch::ag::AddressGenerator`]s for atomic
//!   read-modify-writes — all ticked in lockstep until the traffic
//!   drains. This captures bank contention, row conflicts, atomics
//!   serialization, and multi-channel parallelism (the Table 13
//!   sensitivities the analytic model cannot see) and surfaces the
//!   rolled-up counters in [`PerfReport::mem`]. The replay is
//!   deterministic and machine-independent, so cycle-level results are
//!   golden-pinnable and byte-identical across `CAPSTAN_THREADS`
//!   settings — but they intentionally differ from analytic-mode cycle
//!   counts, so perf baselines are recorded per mode (and per channel
//!   count).
//!
//! Within the cycle-level mode, [`CapstanConfig::mem_addresses`] picks
//! where scattered (random/atomic) DRAM addresses come from: synthetic
//! uniform streams (the default every golden value was captured under)
//! or the recorder's *real* sampled address vectors
//! (`MemAddressing::Recorded`), replayed cyclically so hub-heavy
//! workloads coalesce in the AGs' open-burst caches. Workloads without
//! recordings fall back to the synthetic streams bit-for-bit.
//!
//! # The persistent memory-driver pool
//!
//! Sweep-style experiments call [`simulate`] hundreds of times;
//! constructing a fresh [`MemSysSim`] each time would re-allocate the
//! channel queues and AG slabs on every call. Instead, a process-wide
//! pool keeps constructed drivers keyed by `(DramModel, MemSysConfig)`:
//! each `simulate` call **checks a matching driver out** (holding the
//! pool lock only for the take/return, never during simulation — so
//! worker threads never serialize on each other), **resets** it, runs
//! the replay, and returns it. The pool is process-wide rather than
//! `thread_local!` because `capstan_par::par_map` spawns fresh scoped
//! threads per call — per-thread storage would die between sweep
//! points. [`MemSysSim::reset`] is contractually indistinguishable from
//! fresh construction (same tiles replay to the same cycle count), so
//! the pooling is invisible in results: cycle counts stay bit-identical
//! to the construct-per-call path regardless of which thread checks out
//! which driver, preserving the `CAPSTAN_THREADS` byte-diff contract.
//! The reuse path is allocation-free in steady state — proven in
//! `crates/arch/tests/alloc_free.rs`.

use crate::config::CapstanConfig;
use crate::config::{MemAddressing, MemTiming};
use crate::program::{TileWork, Workload};
use crate::report::{Breakdown, PerfReport};
use capstan_arch::memdrv::{
    MemStats, MemSysConfig, MemSysSim, TenantId, TenantStats, TileTraffic, MAX_TENANTS,
};
use capstan_arch::shuffle::{ButterflyNetwork, RouteScratch, ShuffleVector};
use capstan_arch::spmu::driver::run_vectors;
use capstan_arch::spmu::{AccessVector, LaneRequest};
use capstan_sim::dram::{AccessPattern, DramModel, MemoryKind, BURST_BYTES};
use capstan_sim::network::NetworkModel;
use std::sync::{Mutex, OnceLock};

/// Process-wide pool of persistent cycle-level memory drivers, keyed by
/// `(DramModel, MemSysConfig)`. See the module docs ("The persistent
/// memory-driver pool") for the checkout/reset contract.
static MEMSYS_POOL: Mutex<Vec<(DramModel, MemSysConfig, MemSysSim)>> = Mutex::new(Vec::new());

/// Retained-driver cap: a returning driver is dropped instead of pooled
/// once this many are already parked. Bounds the cache for long-lived
/// processes that sweep many geometries (a paper-scale 80-channel driver
/// holds ~20 MB of AG regions) without affecting results — pooling is
/// bit-invisible, so dropping is too.
const MEMSYS_POOL_CAP: usize = 16;

/// Runs `f` on a persistent [`MemSysSim`] for the given model and
/// geometry, checking one out of the process-wide pool (reset before
/// reuse — bit-equivalent to fresh construction, so pooling never
/// changes results) or constructing one when no match is free. The pool
/// lock is held only for the take/return, never while `f` runs.
fn with_memsys<R>(model: DramModel, mcfg: MemSysConfig, f: impl FnOnce(&mut MemSysSim) -> R) -> R {
    let mut sim = {
        let mut pool = MEMSYS_POOL.lock().expect("memsys pool poisoned");
        match pool.iter().position(|(m, c, _)| *m == model && *c == mcfg) {
            Some(i) => {
                let (_, _, mut sim) = pool.swap_remove(i);
                sim.reset();
                sim
            }
            None => MemSysSim::with_config(model, mcfg),
        }
    };
    let result = f(&mut sim);
    // A panic inside `f` simply drops the driver instead of returning
    // it — the pool never holds a half-simulated entry.
    let mut pool = MEMSYS_POOL.lock().expect("memsys pool poisoned");
    if pool.len() < MEMSYS_POOL_CAP {
        pool.push((model, mcfg, sim));
    }
    result
}

/// Crash-safety hooks for the cycle-level drain, read once from the
/// environment:
///
/// * `CAPSTAN_CHECKPOINT_DIR` — when set, the drain loop periodically
///   writes the driver's sealed snapshot to `<dir>/memsys.ckpt`
///   (atomic temp-file + rename, last write wins). A diagnostic /
///   smoke-test artifact: it proves mid-run savestates are taken on a
///   live workload and restorable offline.
/// * `CAPSTAN_CHECKPOINT_EVERY_CYCLES` — checkpoint cadence in
///   simulated cycles (default `1 << 20`).
/// * `CAPSTAN_FAULT_AFTER_CYCLES` — fault injection: once the
///   process-wide simulated-cycle total (plus the in-progress batch)
///   reaches this, the process prints a diagnostic and exits with code
///   43, simulating a mid-experiment crash for the kill-and-resume CI
///   job. With worker threads the crossing is detected at chunk
///   granularity, so the exact exit point is approximate — the resume
///   contract never depends on *where* a run died, only that the
///   journal already holds every completed row.
#[derive(Debug, Default)]
struct MemHooks {
    checkpoint_dir: Option<std::path::PathBuf>,
    checkpoint_every: u64,
    fault_after: Option<u64>,
}

impl MemHooks {
    fn get() -> &'static MemHooks {
        static HOOKS: OnceLock<MemHooks> = OnceLock::new();
        HOOKS.get_or_init(|| {
            let parse = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
            MemHooks {
                checkpoint_dir: std::env::var_os("CAPSTAN_CHECKPOINT_DIR")
                    .map(std::path::PathBuf::from),
                checkpoint_every: parse("CAPSTAN_CHECKPOINT_EVERY_CYCLES").unwrap_or(1 << 20),
                fault_after: parse("CAPSTAN_FAULT_AFTER_CYCLES"),
            }
        })
    }

    fn active(&self) -> bool {
        self.checkpoint_dir.is_some() || self.fault_after.is_some()
    }
}

/// Drains `msim` to completion. Without hooks this is exactly
/// [`MemSysSim::run`]; with hooks the same drain runs in bounded
/// [`MemSysSim::step`] chunks (bit-identical by the step contract) so
/// checkpoints and the injected fault land mid-run.
fn drive_memsys(msim: &mut MemSysSim) -> MemStats {
    let hooks = MemHooks::get();
    if !hooks.active() {
        return msim.run();
    }
    let chunk = hooks.checkpoint_every.max(1);
    let base = capstan_sim::stats::simulated_cycles();
    while !msim.step(chunk) {
        if let Some(limit) = hooks.fault_after {
            if base + msim.cycle() >= limit {
                if let Some(dir) = &hooks.checkpoint_dir {
                    let _ = std::fs::create_dir_all(dir);
                    let _ = capstan_sim::snapshot::atomic_write(
                        &dir.join("memsys.ckpt"),
                        &msim.save_state(),
                    );
                }
                eprintln!(
                    "capstan: injected fault after {} simulated cycles (CAPSTAN_FAULT_AFTER_CYCLES)",
                    base + msim.cycle()
                );
                std::process::exit(43);
            }
        }
        if let Some(dir) = &hooks.checkpoint_dir {
            let _ = std::fs::create_dir_all(dir);
            let _ =
                capstan_sim::snapshot::atomic_write(&dir.join("memsys.ckpt"), &msim.save_state());
        }
    }
    msim.finish_run()
}

/// Synthetic (ideal-memory) cycle analysis of one tile.
#[derive(Debug, Clone, Copy, Default)]
struct TileSynthetic {
    active: u64,
    scan: u64,
    load_store: u64,
    vector_length: u64,
    total: u64,
}

fn scan_stage_cycles(tile: &TileWork, cfg: &CapstanConfig) -> u64 {
    if cfg.scalar_stream_join {
        // Without a scanner, sparse loop headers decay to one scalar
        // decision per cycle. Joins over *dense* operands (frontier
        // bitsets, sparse input vectors) must examine every element;
        // compressed-list joins pay one cycle per input element.
        tile.scan_input_bits
            .max(tile.scan_input_nnz)
            .max(tile.scan_emitted)
    } else {
        tile.scan_cycles
    }
}

fn tile_synthetic(tile: &TileWork, cfg: &CapstanConfig) -> TileSynthetic {
    let lanes = cfg.grid.lanes as u64;
    let active = tile.lane_work.div_ceil(lanes);
    let scan_stage = scan_stage_cycles(tile, cfg);
    // Streaming loads/stores overlap with compute through SRAM
    // multi-buffers (paper §4.4); lanes only stall when the issue stage
    // outpaces the data movement, so the stages compose as a max.
    let t1 = active.max(scan_stage);
    let ls_words = tile.dram_stream_bytes / 4 + tile.dram_random_words + tile.dram_atomic_words;
    let ls_stage = ls_words.div_ceil(lanes);
    let t2 = t1.max(ls_stage);
    let t3 = tile.vectors.max(scan_stage).max(ls_stage);
    TileSynthetic {
        active,
        scan: t1 - active,
        load_store: t2 - t1,
        vector_length: t3 - t2,
        total: t3,
    }
}

/// Rewrites a tile's sampled trace into `scratch`, masking addresses
/// into the SpMU's local address space. Reuses both the outer vector and
/// each slot's lane buffer, so repeated tiles allocate nothing once the
/// buffers reach their high-water mark.
fn mask_sampled_into(scratch: &mut Vec<AccessVector>, sampled: &[AccessVector], capacity: u32) {
    scratch.truncate(sampled.len());
    while scratch.len() < sampled.len() {
        scratch.push(AccessVector::default());
    }
    for (dst, src) in scratch.iter_mut().zip(sampled) {
        dst.lanes.clear();
        dst.lanes.extend(src.lanes.iter().map(|l| {
            l.map(|r| LaneRequest {
                addr: r.addr % capacity,
                ..r
            })
        }));
    }
}

/// Replays a tile's sampled SRAM trace through the cycle-level SpMU and
/// returns `(excess cycles over ideal for the whole tile, bank util)`.
/// `trace_scratch` is the reusable masked-trace buffer shared across
/// tiles.
fn tile_sram_excess(
    tile: &TileWork,
    cfg: &CapstanConfig,
    trace_scratch: &mut Vec<AccessVector>,
) -> (u64, f64) {
    let sram = &tile.sram;
    if sram.total_vectors == 0 {
        return (0, 0.0);
    }
    let mut excess = 0.0f64;
    let mut util = 0.0f64;
    if cfg.serialized_sram {
        // Statically banked memory (Plasticine): one random access per
        // cycle per memory — a 16-lane vector serializes over 16 cycles
        // (paper §5: "each memory only supports one access per cycle,
        // leaving 15 banks inactive") — and RMW bubbles serialize too,
        // because there is no lane-level overlap to hide them.
        excess = sram.total_requests.saturating_sub(sram.total_vectors) as f64
            + (sram.rmw_requests * cfg.rmw_bubble_cycles) as f64;
        util = 1.0 / cfg.spmu.banks as f64;
        return (excess.round() as u64, util);
    }
    if !cfg.spmu.ideal_conflict_free && !sram.sampled.is_empty() {
        // Mask addresses into the SpMU's local address space.
        mask_sampled_into(
            trace_scratch,
            &sram.sampled,
            cfg.spmu.capacity_words() as u32,
        );
        let result = run_vectors(cfg.spmu, trace_scratch);
        util = result.bank_utilization;
        let n = trace_scratch.len() as f64;
        // Ideal throughput is one vector per cycle; subtract the fixed
        // pipeline drain so short samples are not over-penalized.
        let drain = cfg.spmu.pipeline_latency as f64 + 3.0;
        let excess_per_vector = ((result.cycles as f64 - drain) - n).max(0.0) / n;
        excess = excess_per_vector * sram.total_vectors as f64;
    }
    // Fabrics without an RMW pipeline pay a bubble per update request.
    if cfg.rmw_bubble_cycles > 0 {
        excess += (sram.rmw_requests * cfg.rmw_bubble_cycles) as f64 / cfg.grid.lanes as f64;
    }
    (excess.round() as u64, util)
}

/// Routes the workload's sampled shuffle traffic and returns the total
/// extra network cycles (beyond ideal delivery), extrapolated.
fn network_excess(workload: &Workload, cfg: &CapstanConfig) -> u64 {
    let Some(shuffle_cfg) = cfg.shuffle else {
        return 0;
    };
    let total_entries: u64 = workload.tiles.iter().map(|t| t.remote.total_entries).sum();
    if total_entries == 0 {
        return 0;
    }
    // Build per-port sample streams: tile i injects at port i mod ports.
    // The streams borrow each tile's sampled vectors in place — the
    // butterfly's `route_ref` works on borrows, so nothing is cloned.
    let ports = shuffle_cfg.ports;
    let mut streams: Vec<Vec<&ShuffleVector>> = vec![Vec::new(); ports];
    let mut sample_entries = 0u64;
    for (i, tile) in workload.tiles.iter().enumerate() {
        for v in &tile.remote.sampled {
            sample_entries += v.iter().flatten().count() as u64;
            streams[i % ports].push(v);
        }
    }
    if sample_entries == 0 {
        return 0;
    }
    let net = ButterflyNetwork::new(shuffle_cfg);
    let mut scratch = RouteScratch::default();
    let result = net.route_ref(&streams, &mut scratch);
    // Ideal delivery: the bottleneck input port's vector count.
    let ideal: u64 = streams.iter().map(|s| s.len() as u64).max().unwrap_or(1);
    let extra_sample = result.cycles.saturating_sub(ideal);
    let scale = total_entries as f64 / sample_entries as f64;
    (extra_sample as f64 * scale).round() as u64
}

/// Simulates a workload on a configuration, producing the cycle count and
/// stall breakdown.
pub fn simulate(workload: &Workload, cfg: &CapstanConfig) -> PerfReport {
    let pipelines = cfg.effective_outer_par(workload.cus_per_pipeline);
    let p = pipelines as f64;
    let net_model = NetworkModel::new(cfg.network, cfg.grid.side);
    let dram_model = DramModel::new(cfg.memory);

    // --- Synthetic analysis ---------------------------------------------
    let synth: Vec<TileSynthetic> = workload
        .tiles
        .iter()
        .map(|t| tile_synthetic(t, cfg))
        .collect();
    let mut pipeline_load = vec![0u64; pipelines];
    for (i, s) in synth.iter().enumerate() {
        pipeline_load[i % pipelines] += s.total;
    }
    let t_max = pipeline_load.iter().copied().max().unwrap_or(0);
    let t_mean = synth.iter().map(|s| s.total).sum::<u64>() as f64 / p;
    let active = synth.iter().map(|s| s.active).sum::<u64>() as f64 / p;
    let scan = synth.iter().map(|s| s.scan).sum::<u64>() as f64 / p;
    let load_store = synth.iter().map(|s| s.load_store).sum::<u64>() as f64 / p;
    let vector_length = synth.iter().map(|s| s.vector_length).sum::<u64>() as f64 / p;
    let imbalance = (t_max as f64 - t_mean).max(0.0);

    // --- Network ----------------------------------------------------------
    let mut network = 0.0f64;
    let mut dram_extra_atomic_words = 0u64;
    let mut fallback_atomic_entries = 0u64;
    if !cfg.ideal_net_and_mem {
        if cfg.shuffle.is_some() {
            network += network_excess(workload, cfg) as f64;
        } else {
            // Without a shuffle network, cross-tile updates fall back to
            // atomic DRAM accesses (Table 11's "None" column). The AGs'
            // open-burst tracking coalesces updates that hit the same
            // 16-word burst (§3.4), which graph hubs and conv halos do
            // heavily; 8 hits per fetched burst is the calibrated rate
            // the *analytic* mode prices with. The cycle-level mode
            // replays the raw entry count instead — its real AG models
            // coalescing itself, and pre-dividing would discount twice.
            const AG_COALESCE: u64 = 8;
            fallback_atomic_entries = workload
                .tiles
                .iter()
                .map(|t| t.remote.total_entries)
                .sum::<u64>();
            dram_extra_atomic_words += fallback_atomic_entries.div_ceil(AG_COALESCE);
        }
        // Non-pipelinable rounds each pay a network round trip.
        network += (workload.dependent_rounds * net_model.round_trip_cycles(1)) as f64;
    }

    // --- SRAM --------------------------------------------------------------
    let mut sram_total = 0u64;
    let mut util_weighted = 0.0f64;
    let mut util_weight = 0.0f64;
    let mut trace_scratch: Vec<AccessVector> = Vec::new();
    for tile in &workload.tiles {
        let (excess, util) = tile_sram_excess(tile, cfg, &mut trace_scratch);
        sram_total += excess;
        if tile.sram.total_vectors > 0 {
            util_weighted += util * tile.sram.total_vectors as f64;
            util_weight += tile.sram.total_vectors as f64;
        }
    }
    let sram = sram_total as f64 / p;

    // --- DRAM ---------------------------------------------------------------
    let effective_stream_bytes = |t: &TileWork| {
        if cfg.compression {
            t.dram_stream_bytes - t.dram_compressible_bytes + t.dram_compressed_bytes
        } else {
            t.dram_stream_bytes
        }
    };
    let stream_bytes: u64 = workload.tiles.iter().map(effective_stream_bytes).sum();
    let random_bursts: u64 = workload
        .tiles
        .iter()
        .map(|t| t.dram_random_words)
        .sum::<u64>();
    let atomic_bursts: u64 = workload
        .tiles
        .iter()
        .map(|t| t.dram_atomic_words)
        .sum::<u64>()
        + dram_extra_atomic_words;
    let random_bytes = random_bursts * 64 + atomic_bursts * 128; // RMW: fetch + writeback
    let dram_bytes = stream_bytes + random_bytes;
    let mut dram = 0.0f64;
    let mut mem_stats: Option<MemStats> = None;
    let mut mem_tenant_stats: Vec<TenantStats> = Vec::new();
    if !cfg.ideal_net_and_mem {
        let dram_cycles = match cfg.mem_timing {
            MemTiming::CycleLevel if !matches!(cfg.memory, MemoryKind::Ideal) => {
                // Replay each tile's traffic through the region channels
                // and the per-region AGs, ticked in lockstep; the drain
                // time replaces the closed-form estimate. The driver is
                // persistent per worker thread (see the module docs), so
                // sweep-style experiments pay construction once.
                let mut mcfg = MemSysConfig::with_channels(&dram_model, cfg.mem_channels);
                // Memory tenants: tiles are attributed round-robin over
                // the tile index, so a run's tenant assignment depends
                // only on the workload's deterministic tile order. With
                // one tenant (the default) every tile lands on
                // `TenantId(0)` and the replay is bit-identical to the
                // pre-tenant driver.
                mcfg.tenants = cfg.mem_tenants.clamp(1, MAX_TENANTS);
                mcfg.partition = cfg.mem_tenant_partition;
                // The drain-loop mode is declared per config (the
                // CAPSTAN_MEM_FASTFORWARD env override is applied
                // inside the driver). It participates in the pool key
                // like every other config field, which is harmless:
                // the process-wide default makes it constant per run.
                mcfg.fast_forward = cfg.mem_fast_forward;
                // Under recorded addressing, each tile also hands the
                // driver its sampled scattered-address vectors. The
                // fallback is per traffic class and driver-wide: a
                // class whose recorded buffer stays empty across every
                // queued tile replays from its synthetic stream
                // bit-for-bit (so the two modes only diverge for
                // workloads that actually record addresses), while a
                // class with any recordings replays *all* of its words
                // — including count-only contributions — from the
                // concatenated sample, weighted by sample length. See
                // `MemSysSim::add_tile_recorded` for the contract.
                let recorded = matches!(cfg.mem_addresses, MemAddressing::Recorded);
                let tenants = mcfg.tenants;
                let (stats, tenant_stats) = with_memsys(dram_model, mcfg, |msim| {
                    for (i, tile) in workload.tiles.iter().enumerate() {
                        let tenant = TenantId(i % tenants);
                        let traffic = TileTraffic {
                            stream_bursts: effective_stream_bytes(tile).div_ceil(BURST_BYTES),
                            random_bursts: tile.dram_random_words,
                            atomic_words: tile.dram_atomic_words,
                        };
                        if recorded {
                            msim.add_tile_recorded_for(
                                tenant,
                                traffic,
                                &tile.dram_random_addrs,
                                &tile.dram_atomic_addrs,
                            );
                        } else {
                            msim.add_tile_for(tenant, traffic);
                        }
                    }
                    if fallback_atomic_entries > 0 {
                        // Shuffle-less fallback traffic (Table 11's
                        // "None" column): cross-tile updates as DRAM
                        // atomics. The raw entry count goes in — the
                        // AG's open-burst tracking coalesces, not a
                        // pre-applied constant. Under recorded
                        // addressing the tiles' sampled remote
                        // destinations feed the atomic replay, so hub
                        // destinations coalesce with their real skew.
                        let traffic = TileTraffic {
                            atomic_words: fallback_atomic_entries,
                            ..Default::default()
                        };
                        if recorded {
                            for tile in &workload.tiles {
                                msim.add_tile_recorded(
                                    TileTraffic::default(),
                                    &[],
                                    &tile.remote.addr_sampled,
                                );
                            }
                        }
                        msim.add_tile(traffic);
                    }
                    let stats = drive_memsys(msim);
                    let tenant_stats: Vec<TenantStats> = (0..msim.tenants())
                        .map(|t| msim.tenant_stats(TenantId(t)))
                        .collect();
                    (stats, tenant_stats)
                });
                mem_stats = Some(stats);
                mem_tenant_stats = tenant_stats;
                stats.cycles
            }
            _ => {
                dram_model.transfer_cycles(stream_bytes, AccessPattern::Streaming)
                    + dram_model.transfer_cycles(random_bytes, AccessPattern::Random)
            }
        };
        let t_before = t_max as f64 + network + sram;
        dram += (dram_cycles as f64 - t_before).max(0.0);
        dram += (workload.dependent_rounds * dram_model.latency_cycles()) as f64;
    }

    let breakdown = Breakdown {
        active: active.round() as u64,
        scan: scan.round() as u64,
        load_store: load_store.round() as u64,
        vector_length: vector_length.round() as u64,
        imbalance: imbalance.round() as u64,
        network: network.round() as u64,
        sram: sram.round() as u64,
        dram: dram.round() as u64,
    };
    // Note: the process-wide simulated-cycle counter is NOT bumped with
    // this modeled total. In both timing modes the genuinely simulated
    // ticks are recorded by the engines that produced them — the SpMU
    // replays inside `tile_sram_excess` and, under
    // `MemTiming::CycleLevel`, the memory-system drain inside
    // `MemSysSim::run` — while the synthetic components (Active, Scan,
    // Imbalance, ...) are closed-form estimates; adding the breakdown
    // total would double-count the replays and change units whenever
    // the perf *model* (not a simulator) changes.
    let cycles = breakdown.total().max(1);
    let total_lane_work: u64 = workload.tiles.iter().map(|t| t.lane_work).sum();
    PerfReport {
        name: workload.name.clone(),
        cycles,
        breakdown,
        pipelines,
        sram_bank_utilization: if util_weight > 0.0 {
            util_weighted / util_weight
        } else {
            0.0
        },
        dram_bytes,
        lane_efficiency: total_lane_work as f64
            / (cycles as f64 * p * cfg.grid.lanes as f64).max(1.0),
        mem: mem_stats,
        mem_tenants: mem_tenant_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryKind;
    use crate::program::WorkloadBuilder;
    use capstan_arch::spmu::RmwOp;

    fn dense_workload(n: usize, tiles: usize) -> Workload {
        let mut wl = WorkloadBuilder::new("dense");
        for _ in 0..tiles {
            let mut t = wl.tile();
            t.dram_stream_read(n * 4);
            t.foreach_vec(n, |_, _| {});
            t.dram_stream_write(n * 4);
            wl.commit(t);
        }
        wl.finish()
    }

    #[test]
    fn dense_workload_is_mostly_active_or_loadstore() {
        let cfg = CapstanConfig::new(MemoryKind::Hbm2e);
        let report = simulate(&dense_workload(16_000, 32), &cfg);
        let b = report.breakdown;
        assert_eq!(b.scan, 0);
        assert_eq!(b.sram, 0);
        assert!(b.active > 0);
        assert_eq!(b.total(), report.cycles);
    }

    #[test]
    fn more_bandwidth_never_hurts() {
        let mut wl = WorkloadBuilder::new("bw");
        for _ in 0..32 {
            let mut t = wl.tile();
            t.dram_stream_read((100 << 20) / 32);
            t.foreach_vec(1000, |_, _| {});
            wl.commit(t);
        }
        let w = wl.finish();
        let slow = simulate(&w, &CapstanConfig::new(MemoryKind::Ddr4));
        let fast = simulate(&w, &CapstanConfig::new(MemoryKind::Hbm2e));
        assert!(slow.cycles > fast.cycles);
        // DDR4/HBM2E cycle ratio should approach the bandwidth ratio for a
        // fully memory-bound workload.
        let ratio = slow.cycles as f64 / fast.cycles as f64;
        assert!(ratio > 10.0, "ratio {ratio}");
    }

    #[test]
    fn random_sram_traffic_shows_up_as_sram_stall() {
        let mut wl = WorkloadBuilder::new("sram");
        {
            let mut t = wl.tile();
            // Random-ish conflicting addresses: bank conflicts guaranteed.
            t.foreach_vec(4096, |t, i| {
                t.sram_rmw(((i * 7919) % 65_536) as u32, RmwOp::AddF);
            });
            wl.commit(t);
        }
        let w = wl.finish();
        let cfg = CapstanConfig::new(MemoryKind::Ideal);
        let report = simulate(&w, &cfg);
        assert!(report.breakdown.sram > 0, "{:?}", report.breakdown);
        assert!(report.sram_bank_utilization > 0.1);
    }

    #[test]
    fn ideal_config_removes_memory_components() {
        let w = dense_workload(10_000, 8);
        let report = simulate(&w, &CapstanConfig::ideal());
        assert_eq!(report.breakdown.dram, 0);
        assert_eq!(report.breakdown.network, 0);
    }

    #[test]
    fn imbalance_appears_for_skewed_tiles() {
        let mut wl = WorkloadBuilder::new("skew");
        {
            let mut t = wl.tile();
            t.foreach_vec(100_000, |_, _| {});
            wl.commit(t);
        }
        for _ in 0..31 {
            let mut t = wl.tile();
            t.foreach_vec(100, |_, _| {});
            wl.commit(t);
        }
        let report = simulate(&wl.finish(), &CapstanConfig::ideal());
        assert!(
            report.breakdown.imbalance > report.breakdown.active,
            "{:?}",
            report.breakdown
        );
    }

    #[test]
    fn dependent_rounds_cost_network_and_dram_latency() {
        let mut wl = WorkloadBuilder::new("rounds");
        {
            let mut t = wl.tile();
            t.foreach_vec(100, |_, _| {});
            wl.commit(t);
        }
        wl.set_dependent_rounds(100);
        let w = wl.finish();
        let with = simulate(&w, &CapstanConfig::new(MemoryKind::Hbm2e));
        assert!(with.breakdown.network > 0);
        assert!(with.breakdown.dram > 0);
        let ideal = simulate(&w, &CapstanConfig::ideal());
        assert_eq!(ideal.breakdown.network, 0);
    }

    #[test]
    fn stream_join_slows_scans() {
        use capstan_tensor::bitvec::BitVec;
        let a = BitVec::from_indices(65_536, &(0..2000u32).map(|i| i * 30).collect::<Vec<_>>())
            .unwrap();
        let b = BitVec::from_indices(
            65_536,
            &(0..2000u32).map(|i| i * 30 + 3).collect::<Vec<_>>(),
        )
        .unwrap();
        let build = |cfg: &CapstanConfig| {
            let mut wl = WorkloadBuilder::for_config("scan", cfg);
            {
                let mut t = wl.tile();
                t.scan(
                    capstan_arch::scanner::ScanMode::Union,
                    &a,
                    Some(&b),
                    |_, _| {},
                );
                wl.commit(t);
            }
            wl.finish()
        };
        let capstan_cfg = CapstanConfig::ideal();
        let mut plasticine_cfg = CapstanConfig::ideal();
        plasticine_cfg.scalar_stream_join = true;
        let vectorized = simulate(&build(&capstan_cfg), &capstan_cfg);
        let scalar = simulate(&build(&plasticine_cfg), &plasticine_cfg);
        assert!(
            scalar.cycles > vectorized.cycles * 3,
            "scalar {} vs vectorized {}",
            scalar.cycles,
            vectorized.cycles
        );
    }

    #[test]
    fn rmw_bubbles_penalize_updates() {
        let mut wl = WorkloadBuilder::new("rmw");
        {
            let mut t = wl.tile();
            t.foreach_vec(10_000, |t, i| t.sram_rmw((i % 4096) as u32, RmwOp::AddF));
            wl.commit(t);
        }
        let w = wl.finish();
        let mut bubbly = CapstanConfig::ideal();
        bubbly.rmw_bubble_cycles = 10;
        let clean = simulate(&w, &CapstanConfig::ideal());
        let slow = simulate(&w, &bubbly);
        assert!(slow.cycles > clean.cycles);
    }

    #[test]
    fn compression_reduces_dram_component() {
        let ptrs: Vec<u32> = (0..1_000_000u32).map(|i| 5_000_000 + i / 8).collect();
        let build = || {
            let mut wl = WorkloadBuilder::new("ptr");
            {
                let mut t = wl.tile();
                t.dram_pointer_read(&ptrs);
                t.foreach_vec(1000, |_, _| {});
                wl.commit(t);
            }
            wl.finish()
        };
        let mut on = CapstanConfig::new(MemoryKind::Ddr4);
        on.compression = true;
        let mut off = on;
        off.compression = false;
        let w = build();
        let r_on = simulate(&w, &on);
        let r_off = simulate(&w, &off);
        assert!(
            r_on.cycles < r_off.cycles,
            "on {} off {}",
            r_on.cycles,
            r_off.cycles
        );
        assert!(r_on.dram_bytes < r_off.dram_bytes);
    }

    #[test]
    fn cycle_level_mode_surfaces_stats_and_never_beats_analytic_here() {
        let w = dense_workload(16_000, 32);
        let mut analytic = CapstanConfig::new(MemoryKind::Ddr4);
        analytic.mem_timing = MemTiming::Analytic;
        let mut cyc = analytic;
        cyc.mem_timing = MemTiming::CycleLevel;
        let a = simulate(&w, &analytic);
        let c = simulate(&w, &cyc);
        assert!(a.mem.is_none(), "analytic mode has no cycle observables");
        let stats = c.mem.expect("cycle mode must surface MemStats");
        assert!(stats.cycles > 0);
        assert_eq!(stats.random_bursts, 0);
        assert!(stats.stream_bursts > 0);
        // The banked channel's derived timing can only refine the
        // analytic rate downward, so a DRAM-bound streaming workload
        // never gets faster under the cycle-level mode.
        assert!(c.cycles >= a.cycles, "{} < {}", c.cycles, a.cycles);
        assert_eq!(c.breakdown.total(), c.cycles);
    }

    #[test]
    fn cycle_level_ideal_memory_is_still_free() {
        let w = dense_workload(10_000, 8);
        let mut cfg = CapstanConfig::ideal();
        cfg.mem_timing = MemTiming::CycleLevel;
        let report = simulate(&w, &cfg);
        assert_eq!(report.breakdown.dram, 0);
        assert!(report.mem.is_none());
    }

    #[test]
    fn cycle_level_prices_atomics_through_the_ag() {
        let mut wl = WorkloadBuilder::new("atomic");
        {
            let mut t = wl.tile();
            t.foreach_vec(1000, |_, _| {});
            t.dram_atomic(4096);
            wl.commit(t);
        }
        let w = wl.finish();
        let mut cfg = CapstanConfig::new(MemoryKind::Ddr4);
        cfg.mem_timing = MemTiming::CycleLevel;
        let report = simulate(&w, &cfg);
        let stats = report.mem.expect("stats present");
        assert_eq!(stats.atomic_words, 4096);
        assert!(stats.ag_bursts_fetched > 0);
        assert!(stats.ag_bursts_written > 0);
        assert!(report.breakdown.dram > 0);
    }

    #[test]
    fn persistent_driver_reuse_is_invisible_in_results() {
        // The second call on this thread takes the pooled-reset path;
        // the first constructed the driver. Reset is contractually
        // bit-equivalent to fresh construction, so the two reports must
        // be identical — including the rolled-up memory counters.
        let mut wl = WorkloadBuilder::new("pooled");
        {
            let mut t = wl.tile();
            t.foreach_vec(500, |_, _| {});
            t.dram_stream_read(1 << 16);
            t.dram_random_read(2048);
            t.dram_atomic(2048);
            wl.commit(t);
        }
        let w = wl.finish();
        let mut cfg = CapstanConfig::new(MemoryKind::Hbm2e);
        cfg.mem_timing = MemTiming::CycleLevel;
        let a = simulate(&w, &cfg);
        let b = simulate(&w, &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mem, b.mem);
        assert!(a.mem.is_some());
    }

    #[test]
    fn recorded_addressing_without_recordings_is_bit_identical_to_synthetic() {
        // The fallback contract end to end through `simulate`: a
        // workload that never recorded addresses must produce the same
        // report under both addressing modes.
        let mut wl = WorkloadBuilder::new("unrecorded");
        {
            let mut t = wl.tile();
            t.foreach_vec(500, |_, _| {});
            t.dram_stream_read(1 << 16);
            t.dram_random_read(2048);
            t.dram_atomic(2048);
            wl.commit(t);
        }
        let w = wl.finish();
        let mut synth = CapstanConfig::new(MemoryKind::Hbm2e);
        synth.mem_timing = MemTiming::CycleLevel;
        synth.mem_addresses = MemAddressing::Synthetic;
        let mut rec = synth;
        rec.mem_addresses = MemAddressing::Recorded;
        assert_eq!(simulate(&w, &synth), simulate(&w, &rec));
    }

    #[test]
    fn recorded_hub_addresses_beat_synthetic_on_skewed_atomics() {
        // A hub-heavy recorded atomic stream coalesces in the AG's
        // open-burst cache; the uniform synthetic spray cannot.
        let mut wl = WorkloadBuilder::new("hubs");
        {
            let mut t = wl.tile();
            t.foreach_vec(500, |_, _| {});
            for i in 0..8192u64 {
                t.dram_atomic_at(i % 64); // 4 hot bursts
            }
            wl.commit(t);
        }
        let w = wl.finish();
        let mut synth = CapstanConfig::new(MemoryKind::Hbm2e);
        synth.mem_timing = MemTiming::CycleLevel;
        let mut rec = synth;
        rec.mem_addresses = MemAddressing::Recorded;
        let s = simulate(&w, &synth);
        let r = simulate(&w, &rec);
        assert_eq!(
            s.mem.unwrap().atomic_words,
            r.mem.unwrap().atomic_words,
            "word counts must be conserved across addressing modes"
        );
        assert!(
            r.cycles < s.cycles,
            "recorded hubs ({}) must beat synthetic uniform ({})",
            r.cycles,
            s.cycles
        );
    }

    #[test]
    fn mem_channels_shrink_atomic_heavy_drains() {
        let mut wl = WorkloadBuilder::new("channels");
        {
            let mut t = wl.tile();
            t.foreach_vec(500, |_, _| {});
            t.dram_atomic(16_384);
            wl.commit(t);
        }
        let w = wl.finish();
        let mut one = CapstanConfig::new(MemoryKind::Hbm2e);
        one.mem_timing = MemTiming::CycleLevel;
        one.mem_channels = 1;
        let mut four = one;
        four.mem_channels = 4;
        let r1 = simulate(&w, &one);
        let r4 = simulate(&w, &four);
        assert_eq!(r1.mem.unwrap().channels, 1);
        assert_eq!(r4.mem.unwrap().channels, 4);
        assert!(
            r4.cycles < r1.cycles,
            "4 channels ({}) must beat 1 ({}) on atomic-heavy traffic",
            r4.cycles,
            r1.cycles
        );
    }

    #[test]
    fn breakdown_sums_to_cycles() {
        let w = dense_workload(5000, 16);
        for mem in [MemoryKind::Ddr4, MemoryKind::Hbm2, MemoryKind::Hbm2e] {
            let report = simulate(&w, &CapstanConfig::new(mem));
            assert_eq!(report.breakdown.total(), report.cycles);
        }
    }
}
