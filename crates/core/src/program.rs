//! The declarative programming model: loop nests recorded as workloads.
//!
//! Paper §2.3: Capstan programs are nested `Foreach`/`Reduce` loops whose
//! headers are dense counters or `Scan` statements:
//!
//! ```text
//! Dense:  Foreach(min until max by step par p) { j => ... }
//! Sparse: Foreach(Scan(par=p, len=l, A.deq, B.deq)) { j, jA, jB, jprime => ... }
//! ```
//!
//! The Rust embedding is a *recording executor*: each application runs its
//! loop nest against a [`TileRecorder`]. Loop bodies are ordinary closures
//! that read and write the application's own data (so the run produces
//! numerically correct results), while the recorder captures everything
//! the performance model needs: vectorized iteration counts, scanner
//! inputs and cycle statistics, real SpMU address vectors (sampled),
//! shuffle-network entries, and DRAM traffic — including bounded
//! deterministic samples of the *real* scattered DRAM addresses
//! (random reads, atomics, remote-update destinations) that the
//! cycle-level memory mode can replay under
//! `CapstanConfig::mem_addresses = Recorded`.

use crate::config::CapstanConfig;
use capstan_arch::scanner::{BitVecScanner, DataScanner, ScanElement, ScanMode, ScanStats};
use capstan_arch::shuffle::{ShuffleEntry, ShuffleVector};
use capstan_arch::spmu::{AccessVector, LaneRequest, RmwOp};
use capstan_tensor::bittree::BitTree;
use capstan_tensor::bitvec::BitVec;
use capstan_tensor::compress::CompressedTile;
use capstan_tensor::Value;

/// Deterministic decimating reservoir: keeps an evenly spaced sample of a
/// stream without randomness (every `2^k`-th element once full).
#[derive(Debug, Clone)]
pub struct Decimator<T> {
    limit: usize,
    stride: u64,
    seen: u64,
    items: Vec<T>,
}

impl<T> Decimator<T> {
    /// Creates a decimator retaining about `limit` items.
    pub fn new(limit: usize) -> Self {
        Decimator {
            limit: limit.max(1),
            stride: 1,
            seen: 0,
            items: Vec::new(),
        }
    }

    /// Offers one stream element.
    pub fn offer(&mut self, item: T) {
        if self.seen.is_multiple_of(self.stride) {
            if self.items.len() >= 2 * self.limit {
                // Thin: drop every other retained item, double the stride.
                let mut keep = Vec::with_capacity(self.limit);
                for (i, it) in self.items.drain(..).enumerate() {
                    if i % 2 == 0 {
                        keep.push(it);
                    }
                }
                self.items = keep;
                self.stride *= 2;
            }
            if self.seen.is_multiple_of(self.stride) {
                self.items.push(item);
            }
        }
        self.seen += 1;
    }

    /// The retained sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total elements offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// SRAM access trace of one tile: totals plus a sampled vector stream for
/// replay through the cycle-level SpMU.
#[derive(Debug, Clone)]
pub struct SramWork {
    /// Total access vectors generated.
    pub total_vectors: u64,
    /// Total lane requests.
    pub total_requests: u64,
    /// Requests that modify memory (read-modify-writes and writes).
    pub rmw_requests: u64,
    /// Sampled access vectors.
    pub sampled: Vec<AccessVector>,
}

/// Cross-tile (shuffle network) traffic of one tile.
#[derive(Debug, Clone)]
pub struct RemoteWork {
    /// Total remote entries sent.
    pub total_entries: u64,
    /// Total request vectors sent.
    pub total_vectors: u64,
    /// Sampled request vectors (destination ports populated).
    pub sampled: Vec<ShuffleVector>,
    /// Sampled destination *word addresses* of remote updates (recorded
    /// by [`TileRecorder::remote_update_at`]; empty when the
    /// application only reports destination tiles). On a machine
    /// without a shuffle network these updates fall back to DRAM
    /// atomics, and the cycle-level memory mode's recorded-address
    /// replay (`CapstanConfig::mem_addresses`) feeds this sample to the
    /// per-region address generators so hub-heavy destination skew can
    /// coalesce in their open-burst caches.
    pub addr_sampled: Vec<u64>,
}

/// Everything recorded about one tile (one outer-parallel pipeline
/// instance) of a workload.
#[derive(Debug, Clone)]
pub struct TileWork {
    /// Scalar loop-body executions (useful lane work).
    pub lane_work: u64,
    /// Vectorized loop iterations issued (`>= lane_work / lanes`; the
    /// excess is vector-length underutilization).
    pub vectors: u64,
    /// Scanner cycles (loop headers).
    pub scan_cycles: u64,
    /// Scanner cycles wasted on all-zero windows.
    pub scan_empty_cycles: u64,
    /// Elements emitted by scanners.
    pub scan_emitted: u64,
    /// Total set bits across scanner inputs (stream-join cost for scalar
    /// baselines).
    pub scan_input_nnz: u64,
    /// Total logical bits across scanner inputs.
    pub scan_input_bits: u64,
    /// Local SRAM trace.
    pub sram: SramWork,
    /// Cross-tile traffic.
    pub remote: RemoteWork,
    /// Streaming DRAM bytes (tile loads/stores).
    pub dram_stream_bytes: u64,
    /// Portion of the streaming bytes that is compressible pointer data.
    pub dram_compressible_bytes: u64,
    /// The compressible portion's size after base/offset compression.
    pub dram_compressed_bytes: u64,
    /// Random-access DRAM words (reads).
    pub dram_random_words: u64,
    /// Atomic DRAM words (read-modify-writes through the AGs).
    pub dram_atomic_words: u64,
    /// Sampled word addresses of the random-access reads (recorded by
    /// [`TileRecorder::dram_random_read_at`]; empty when the
    /// application only reports counts). Replayed by the cycle-level
    /// memory mode under `CapstanConfig::mem_addresses = Recorded`.
    pub dram_random_addrs: Vec<u64>,
    /// Sampled word addresses of the atomic read-modify-writes
    /// (recorded by [`TileRecorder::dram_atomic_at`]; empty when the
    /// application only reports counts). Replayed through the
    /// per-region address generators under
    /// `CapstanConfig::mem_addresses = Recorded`.
    pub dram_atomic_addrs: Vec<u64>,
}

impl TileWork {
    fn new() -> Self {
        TileWork {
            lane_work: 0,
            vectors: 0,
            scan_cycles: 0,
            scan_empty_cycles: 0,
            scan_emitted: 0,
            scan_input_nnz: 0,
            scan_input_bits: 0,
            sram: SramWork {
                total_vectors: 0,
                total_requests: 0,
                rmw_requests: 0,
                sampled: Vec::new(),
            },
            remote: RemoteWork {
                total_entries: 0,
                total_vectors: 0,
                sampled: Vec::new(),
                addr_sampled: Vec::new(),
            },
            dram_stream_bytes: 0,
            dram_compressible_bytes: 0,
            dram_compressed_bytes: 0,
            dram_random_words: 0,
            dram_atomic_words: 0,
            dram_random_addrs: Vec::new(),
            dram_atomic_addrs: Vec::new(),
        }
    }
}

/// A recorded workload: the unit the performance engine costs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Application name.
    pub name: String,
    /// Per-tile traces (one tile per outer-parallel work unit).
    pub tiles: Vec<TileWork>,
    /// Rounds that cannot be pipelined (BFS levels, solver iterations):
    /// each pays an end-to-end network/memory round trip.
    pub dependent_rounds: u64,
    /// Compute units consumed per pipeline (2 when a scanner-only CU
    /// feeds a compute CU, §3.3).
    pub cus_per_pipeline: usize,
}

/// Builds a [`Workload`] tile by tile.
#[derive(Debug)]
pub struct WorkloadBuilder {
    name: String,
    scanner: BitVecScanner,
    data_scanner: DataScanner,
    lanes: usize,
    shuffle_ports: usize,
    sram_limit: usize,
    shuffle_limit: usize,
    addr_limit: usize,
    tiles: Vec<TileWork>,
    dependent_rounds: u64,
    cus_per_pipeline: usize,
}

impl WorkloadBuilder {
    /// Creates a builder with the paper-default scanner and lane count.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadBuilder::for_config(name, &CapstanConfig::paper_default())
    }

    /// Creates a builder matching a specific configuration (scanner
    /// widths and sampling limits affect what gets recorded).
    pub fn for_config(name: impl Into<String>, cfg: &CapstanConfig) -> Self {
        WorkloadBuilder {
            name: name.into(),
            scanner: cfg.scanner,
            data_scanner: cfg.data_scanner,
            lanes: cfg.grid.lanes,
            shuffle_ports: cfg.shuffle.map(|s| s.ports).unwrap_or(16),
            sram_limit: cfg.sram_sample_limit,
            shuffle_limit: cfg.shuffle_sample_limit,
            addr_limit: cfg.addr_sample_limit,
            tiles: Vec::new(),
            dependent_rounds: 0,
            cus_per_pipeline: 1,
        }
    }

    /// Opens a new tile recorder. The recorder is an owned value so that
    /// several tiles can record concurrently (e.g. a fused solver whose
    /// steps interleave across tiles); pass it back to
    /// [`WorkloadBuilder::commit`] to add the tile to the workload.
    pub fn tile(&mut self) -> TileRecorder {
        TileRecorder {
            work: TileWork::new(),
            scanner: self.scanner,
            data_scanner: self.data_scanner,
            lanes: self.lanes,
            shuffle_ports: self.shuffle_ports,
            lane_cursor: 0,
            in_vector_loop: false,
            access_seq: 0,
            builders: Vec::new(),
            remote_builder: Vec::new(),
            sram_sample: Decimator::new(self.sram_limit),
            remote_sample: Decimator::new(self.shuffle_limit),
            remote_addr_sample: Decimator::new(self.addr_limit),
            random_addr_sample: Decimator::new(self.addr_limit),
            atomic_addr_sample: Decimator::new(self.addr_limit),
        }
    }

    /// Adds a recorded tile to the workload.
    pub fn commit(&mut self, recorder: TileRecorder) {
        self.tiles.push(recorder.into_work());
    }

    /// Marks the workload as `rounds` dependent (non-pipelinable) rounds.
    pub fn set_dependent_rounds(&mut self, rounds: u64) {
        self.dependent_rounds = rounds;
    }

    /// Declares that each pipeline consumes `n` CUs (scanner-only CU
    /// feeding a compute CU uses 2).
    pub fn set_cus_per_pipeline(&mut self, n: usize) {
        assert!(n > 0, "a pipeline needs at least one CU");
        self.cus_per_pipeline = n;
    }

    /// Finalizes the workload.
    pub fn finish(self) -> Workload {
        Workload {
            name: self.name,
            tiles: self.tiles,
            dependent_rounds: self.dependent_rounds,
            cus_per_pipeline: self.cus_per_pipeline,
        }
    }
}

/// Records one tile's execution; the application's loop bodies run inside.
#[derive(Debug)]
pub struct TileRecorder {
    work: TileWork,
    scanner: BitVecScanner,
    data_scanner: DataScanner,
    lanes: usize,
    shuffle_ports: usize,
    lane_cursor: usize,
    in_vector_loop: bool,
    access_seq: usize,
    /// One access-vector builder per distinct SRAM access site in the
    /// current vectorized loop body.
    builders: Vec<Vec<Option<LaneRequest>>>,
    remote_builder: Vec<Option<ShuffleEntry>>,
    sram_sample: Decimator<AccessVector>,
    remote_sample: Decimator<ShuffleVector>,
    remote_addr_sample: Decimator<u64>,
    random_addr_sample: Decimator<u64>,
    atomic_addr_sample: Decimator<u64>,
}

impl TileRecorder {
    /// Finalizes the recording into a [`TileWork`].
    fn into_work(mut self) -> TileWork {
        self.flush_accesses();
        self.flush_remote();
        self.work.sram.sampled = std::mem::take(&mut self.sram_sample).into_items();
        self.work.remote.sampled = std::mem::take(&mut self.remote_sample).into_items();
        self.work.remote.addr_sampled = std::mem::take(&mut self.remote_addr_sample).into_items();
        self.work.dram_random_addrs = std::mem::take(&mut self.random_addr_sample).into_items();
        self.work.dram_atomic_addrs = std::mem::take(&mut self.atomic_addr_sample).into_items();
        self.work
    }

    /// A dense, vectorized `Foreach` (paper §2.3's
    /// `Foreach(0 until n par 16)`): the body runs once per element; every
    /// `lanes` consecutive iterations form one hardware vector.
    pub fn foreach_vec(&mut self, n: usize, mut body: impl FnMut(&mut Self, usize)) {
        self.begin_vector_loop();
        for i in 0..n {
            self.access_seq = 0;
            body(self, i);
            self.advance_lane();
        }
        self.end_vector_loop(n as u64);
    }

    /// A vectorized sum-`Reduce` over a dense domain.
    pub fn reduce_vec(
        &mut self,
        n: usize,
        mut body: impl FnMut(&mut Self, usize) -> Value,
    ) -> Value {
        let mut acc = 0.0;
        self.foreach_vec(n, |t, i| acc += body(t, i));
        acc
    }

    /// A sparse `Foreach(Scan(...))` loop (paper §2.3): iterates the
    /// intersection or union of one or two bit-vectors; the body receives
    /// the scanner tuple `(j, jA, jB, j')`.
    pub fn scan(
        &mut self,
        mode: ScanMode,
        a: &BitVec,
        b: Option<&BitVec>,
        mut body: impl FnMut(&mut Self, ScanElement),
    ) {
        let (elems, stats) = self.scanner.scan(mode, a, b);
        self.record_scan_inputs(a, b, stats);
        self.begin_vector_loop();
        for e in elems {
            self.access_seq = 0;
            body(self, e);
            self.advance_lane();
        }
        self.end_vector_loop(stats.emitted);
    }

    /// An *outer* sparse loop (paper Table 2's "Loop Over" level 1): the
    /// scanner produces the iteration space, but each element drives a
    /// nested loop, so the body runs in scalar context and may contain
    /// `foreach_vec`/`scan` loops. Scanner cycles are still recorded (the
    /// header pipelines with the inner loops; `perf` takes the max).
    pub fn scan_outer(
        &mut self,
        mode: ScanMode,
        a: &BitVec,
        b: Option<&BitVec>,
        mut body: impl FnMut(&mut Self, ScanElement),
    ) {
        let (elems, stats) = self.scanner.scan(mode, a, b);
        self.record_scan_inputs(a, b, stats);
        for e in elems {
            body(self, e);
        }
    }

    /// An outer sparse loop over raw data values (the data scanner
    /// feeding nested loops — the Conv pattern of paper Table 2).
    pub fn scan_data_outer(&mut self, data: &[Value], mut body: impl FnMut(&mut Self, u32, Value)) {
        let (nz, stats) = self.data_scanner.scan(data);
        self.work.scan_cycles += stats.cycles;
        self.work.scan_empty_cycles += stats.empty_window_cycles;
        self.work.scan_emitted += stats.emitted;
        self.work.scan_input_bits += data.len() as u64;
        self.work.scan_input_nnz += stats.emitted;
        for (i, v) in nz {
            body(self, i, v);
        }
    }

    /// Sparse iteration over raw data values through the data scanner.
    pub fn scan_data(&mut self, data: &[Value], mut body: impl FnMut(&mut Self, u32, Value)) {
        let (nz, stats) = self.data_scanner.scan(data);
        self.work.scan_cycles += stats.cycles;
        self.work.scan_empty_cycles += stats.empty_window_cycles;
        self.work.scan_emitted += stats.emitted;
        self.work.scan_input_bits += data.len() as u64;
        self.work.scan_input_nnz += stats.emitted;
        self.begin_vector_loop();
        for (i, v) in nz {
            self.access_seq = 0;
            body(self, i, v);
            self.advance_lane();
        }
        self.end_vector_loop(stats.emitted);
    }

    /// Nested two-pass bit-tree iteration (paper §2.3).
    pub fn scan_bittree(
        &mut self,
        mode: ScanMode,
        a: &BitTree,
        b: &BitTree,
        mut body: impl FnMut(&mut Self, u32),
    ) {
        let (positions, stats) = capstan_arch::scanner::scan_bittree(&self.scanner, mode, a, b);
        self.work.scan_cycles += stats.cycles;
        self.work.scan_empty_cycles += stats.empty_window_cycles;
        self.work.scan_emitted += stats.emitted;
        self.work.scan_input_nnz += (a.count_ones() + b.count_ones()) as u64;
        self.work.scan_input_bits += (a.root().len() + b.root().len()) as u64
            + (a.leaves().len() + b.leaves().len()) as u64 * 512;
        self.begin_vector_loop();
        for p in positions {
            self.access_seq = 0;
            body(self, p);
            self.advance_lane();
        }
        self.end_vector_loop(stats.emitted);
    }

    fn record_scan_inputs(&mut self, a: &BitVec, b: Option<&BitVec>, stats: ScanStats) {
        self.work.scan_cycles += stats.cycles;
        self.work.scan_empty_cycles += stats.empty_window_cycles;
        self.work.scan_emitted += stats.emitted;
        self.work.scan_input_nnz += a.count_ones() as u64;
        self.work.scan_input_bits += a.len() as u64;
        if let Some(b) = b {
            self.work.scan_input_nnz += b.count_ones() as u64;
            self.work.scan_input_bits += b.len() as u64;
        }
    }

    // --- memory operations --------------------------------------------------

    /// Records a pointer-list to bit-vector conversion through the
    /// compute tile's format converter (paper §3.4): one pointer vector
    /// per cycle, charged to the loop-header (scan) stage it feeds.
    pub fn convert_pointers(&mut self, count: usize) {
        let converter = capstan_arch::fmtconv::FormatConverter::default();
        self.work.scan_cycles += converter.convert_cycles(count);
    }

    /// Records a random SRAM read from the tile-local SpMU.
    pub fn sram_read(&mut self, addr: u32) {
        self.push_access(LaneRequest::read(addr));
    }

    /// Records a random SRAM write.
    pub fn sram_write(&mut self, addr: u32) {
        self.push_access(LaneRequest::write(addr, 0.0));
    }

    /// Records an atomic SRAM read-modify-write (paper §3.1's RMW FPU).
    pub fn sram_rmw(&mut self, addr: u32, op: RmwOp) {
        self.push_access(LaneRequest::rmw(addr, op, 0.0));
    }

    /// Records a cross-tile update routed through the shuffle network to
    /// `dest_tile`'s memory (paper §3.2).
    pub fn remote_update(&mut self, dest_tile: usize) {
        let port = (dest_tile % self.shuffle_ports) as u32;
        let lane = self.lane_cursor;
        self.remote_builder.resize(self.lanes, None);
        if self.remote_builder[lane].is_some() {
            self.flush_remote();
            self.remote_builder.resize(self.lanes, None);
        }
        self.remote_builder[lane] = Some(ShuffleEntry { dest: port, lane });
        self.work.remote.total_entries += 1;
    }

    /// Records a cross-tile update like [`TileRecorder::remote_update`],
    /// additionally sampling the destination *word address* `addr` (the
    /// remote entry being updated — e.g. the vertex id of a graph
    /// update). The sample drives the cycle-level memory mode's
    /// recorded-address replay on machines without a shuffle network,
    /// where these updates fall back to DRAM atomics; hub-heavy
    /// destination skew then coalesces in the AGs' open-burst caches.
    pub fn remote_update_at(&mut self, dest_tile: usize, addr: u64) {
        self.remote_update(dest_tile);
        self.remote_addr_sample.offer(addr);
    }

    /// Records a streaming DRAM read of `bytes` (dense tile loads).
    pub fn dram_stream_read(&mut self, bytes: usize) {
        self.work.dram_stream_bytes += bytes as u64;
    }

    /// Records a streaming DRAM write of `bytes`.
    pub fn dram_stream_write(&mut self, bytes: usize) {
        self.work.dram_stream_bytes += bytes as u64;
    }

    /// Records a streaming read of a *compressible pointer tile* (§3.4):
    /// the words are compressed with the base/offset format to determine
    /// the on-wire size when compression is enabled.
    pub fn dram_pointer_read(&mut self, words: &[u32]) {
        let bytes = words.len() as u64 * 4;
        self.work.dram_stream_bytes += bytes;
        self.work.dram_compressible_bytes += bytes;
        // Compress a bounded prefix and extrapolate the ratio.
        const CAP: usize = 1 << 16;
        let sample = &words[..words.len().min(CAP)];
        if sample.is_empty() {
            return;
        }
        let tile = CompressedTile::compress(sample);
        // Incompressible tiles are left uncompressed (pre-compression is
        // a programmer choice, §3.4), so the ratio never exceeds 1.
        let ratio = (tile.traffic_bytes() as f64 / tile.original_bytes().max(1) as f64).min(1.0);
        self.work.dram_compressed_bytes += (bytes as f64 * ratio).ceil() as u64;
    }

    /// Records `words` random-access DRAM reads (burst-granular).
    pub fn dram_random_read(&mut self, words: u64) {
        self.work.dram_random_words += words;
    }

    /// Records one burst-granular random-access DRAM read at word
    /// address `addr`, sampling the address for the cycle-level memory
    /// mode's recorded-address replay (counts exactly like
    /// `dram_random_read(1)`).
    pub fn dram_random_read_at(&mut self, addr: u64) {
        self.work.dram_random_words += 1;
        self.random_addr_sample.offer(addr);
    }

    /// Records `words` atomic DRAM read-modify-writes through an AG.
    pub fn dram_atomic(&mut self, words: u64) {
        self.work.dram_atomic_words += words;
    }

    /// Records one atomic DRAM read-modify-write at word address
    /// `addr`, sampling the address for the cycle-level memory mode's
    /// recorded-address replay (counts exactly like `dram_atomic(1)`).
    /// Repeated hot addresses — power-law hubs, conv halo cells — let
    /// the replay coalesce in the AGs' open-burst caches the way the
    /// paper's hardware does (§3.4).
    pub fn dram_atomic_at(&mut self, addr: u64) {
        self.work.dram_atomic_words += 1;
        self.atomic_addr_sample.offer(addr);
    }

    // --- internals -----------------------------------------------------------

    fn begin_vector_loop(&mut self) {
        assert!(
            !self.in_vector_loop,
            "vectorized loops cannot nest; vectorize the innermost loop only"
        );
        // Flush any scalar-context accesses accumulated before the loop.
        self.flush_accesses();
        self.flush_remote();
        self.in_vector_loop = true;
        self.lane_cursor = 0;
    }

    fn advance_lane(&mut self) {
        self.lane_cursor += 1;
        if self.lane_cursor == self.lanes {
            self.flush_accesses();
            self.flush_remote();
            self.lane_cursor = 0;
        }
    }

    fn end_vector_loop(&mut self, elements: u64) {
        if self.lane_cursor > 0 {
            self.flush_accesses();
            self.flush_remote();
            self.lane_cursor = 0;
        }
        self.in_vector_loop = false;
        self.work.lane_work += elements;
        self.work.vectors += elements.div_ceil(self.lanes as u64);
    }

    fn push_access(&mut self, req: LaneRequest) {
        if !self.in_vector_loop {
            // Scalar context: pack sequential scalar accesses into lanes.
            self.access_seq = 0;
            if self.builders.is_empty() {
                self.builders.push(vec![None; self.lanes]);
            }
            let lane = self.lane_cursor;
            if self.builders[0][lane].is_some() {
                self.flush_accesses();
                self.builders.push(vec![None; self.lanes]);
            }
            self.builders[0][lane] = Some(req);
            self.record_request(&req);
            self.lane_cursor = (self.lane_cursor + 1) % self.lanes;
            if self.lane_cursor == 0 {
                self.flush_accesses();
            }
            return;
        }
        while self.builders.len() <= self.access_seq {
            self.builders.push(vec![None; self.lanes]);
        }
        self.builders[self.access_seq][self.lane_cursor] = Some(req);
        self.record_request(&req);
        self.access_seq += 1;
    }

    fn record_request(&mut self, req: &LaneRequest) {
        self.work.sram.total_requests += 1;
        if req.op.is_update() {
            self.work.sram.rmw_requests += 1;
        }
    }

    fn flush_accesses(&mut self) {
        for lanes in self.builders.drain(..) {
            if lanes.iter().any(Option::is_some) {
                self.work.sram.total_vectors += 1;
                self.sram_sample.offer(AccessVector::new(lanes));
            }
        }
    }

    fn flush_remote(&mut self) {
        if self.remote_builder.iter().any(Option::is_some) {
            self.work.remote.total_vectors += 1;
            let v = std::mem::take(&mut self.remote_builder);
            self.remote_sample.offer(v);
        }
    }
}

impl<T> Decimator<T> {
    /// Consumes the decimator, returning the retained sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T> Default for Decimator<T> {
    fn default() -> Self {
        Decimator::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn foreach_vec_counts_vectors_and_lanes() {
        let mut wl = WorkloadBuilder::new("t");
        {
            let mut t = wl.tile();
            t.foreach_vec(40, |_, _| {});
            wl.commit(t);
        }
        let w = wl.finish();
        assert_eq!(w.tiles[0].lane_work, 40);
        assert_eq!(w.tiles[0].vectors, 3); // ceil(40/16)
    }

    #[test]
    fn bodies_execute_functionally() {
        let mut wl = WorkloadBuilder::new("t");
        let mut sum = 0usize;
        {
            let mut t = wl.tile();
            t.foreach_vec(10, |_, i| sum += i);
            wl.commit(t);
        }
        assert_eq!(sum, 45);
    }

    #[test]
    fn sram_accesses_group_into_vectors_by_site() {
        let mut wl = WorkloadBuilder::new("t");
        {
            let mut t = wl.tile();
            // 16 iterations, two access sites each -> 2 vectors of 16.
            t.foreach_vec(16, |t, i| {
                t.sram_read(i as u32);
                t.sram_rmw(1000 + i as u32, RmwOp::AddF);
            });
            wl.commit(t);
        }
        let w = wl.finish();
        let sram = &w.tiles[0].sram;
        assert_eq!(sram.total_vectors, 2);
        assert_eq!(sram.total_requests, 32);
        assert_eq!(sram.rmw_requests, 16);
        assert_eq!(sram.sampled.len(), 2);
        assert_eq!(sram.sampled[0].occupancy(), 16);
    }

    #[test]
    fn partial_vectors_flush_at_loop_end() {
        let mut wl = WorkloadBuilder::new("t");
        {
            let mut t = wl.tile();
            t.foreach_vec(5, |t, i| t.sram_read(i as u32));
            wl.commit(t);
        }
        let w = wl.finish();
        assert_eq!(w.tiles[0].sram.total_vectors, 1);
        assert_eq!(w.tiles[0].sram.sampled[0].occupancy(), 5);
    }

    #[test]
    fn scalar_accesses_pack_into_lanes() {
        let mut wl = WorkloadBuilder::new("t");
        {
            let mut t = wl.tile();
            for i in 0..20u32 {
                t.sram_write(i);
            }
            wl.commit(t);
        }
        let w = wl.finish();
        assert_eq!(w.tiles[0].sram.total_vectors, 2);
        assert_eq!(w.tiles[0].sram.total_requests, 20);
    }

    #[test]
    fn scan_records_stats_and_executes_body() {
        let a = BitVec::from_indices(512, &[0, 10, 300]).unwrap();
        let b = BitVec::from_indices(512, &[10, 300, 400]).unwrap();
        let mut wl = WorkloadBuilder::new("t");
        let mut seen = Vec::new();
        {
            let mut t = wl.tile();
            t.scan(ScanMode::Intersect, &a, Some(&b), |_, e| seen.push(e.j));
            wl.commit(t);
        }
        assert_eq!(seen, vec![10, 300]);
        let w = wl.finish();
        assert_eq!(w.tiles[0].scan_emitted, 2);
        assert_eq!(w.tiles[0].scan_input_nnz, 6);
        assert_eq!(w.tiles[0].scan_input_bits, 1024);
        assert!(w.tiles[0].scan_cycles >= 2);
        assert_eq!(w.tiles[0].lane_work, 2);
    }

    #[test]
    fn remote_updates_fill_shuffle_vectors() {
        let mut wl = WorkloadBuilder::new("t");
        {
            let mut t = wl.tile();
            t.foreach_vec(32, |t, i| t.remote_update(i % 7));
            wl.commit(t);
        }
        let w = wl.finish();
        assert_eq!(w.tiles[0].remote.total_entries, 32);
        assert_eq!(w.tiles[0].remote.total_vectors, 2);
    }

    #[test]
    fn pointer_reads_account_compression() {
        let mut wl = WorkloadBuilder::new("t");
        {
            let mut t = wl.tile();
            let ptrs: Vec<u32> = (0..1024u32).map(|i| 100_000 + i / 4).collect();
            t.dram_pointer_read(&ptrs);
            wl.commit(t);
        }
        let w = wl.finish();
        let tile = &w.tiles[0];
        assert_eq!(tile.dram_compressible_bytes, 4096);
        assert!(tile.dram_compressed_bytes < tile.dram_compressible_bytes / 2);
    }

    #[test]
    fn address_recording_samples_and_counts() {
        let mut wl = WorkloadBuilder::new("t");
        {
            let mut t = wl.tile();
            for i in 0..100u64 {
                t.dram_atomic_at(i % 8); // hot set
                t.dram_random_read_at(i * 16);
            }
            t.dram_atomic(50); // count-only API still composes
            t.foreach_vec(32, |t, i| t.remote_update_at(i % 5, (i % 3) as u64));
            wl.commit(t);
        }
        let w = wl.finish();
        let tile = &w.tiles[0];
        assert_eq!(tile.dram_atomic_words, 150);
        assert_eq!(tile.dram_random_words, 100);
        assert_eq!(tile.remote.total_entries, 32);
        assert!(!tile.dram_atomic_addrs.is_empty());
        assert!(tile.dram_atomic_addrs.iter().all(|&a| a < 8));
        assert!(!tile.dram_random_addrs.is_empty());
        assert!(!tile.remote.addr_sampled.is_empty());
        assert!(tile.remote.addr_sampled.iter().all(|&a| a < 3));
    }

    #[test]
    fn address_samples_stay_bounded() {
        let mut cfg = CapstanConfig::paper_default();
        cfg.addr_sample_limit = 64;
        let mut wl = WorkloadBuilder::for_config("t", &cfg);
        {
            let mut t = wl.tile();
            for i in 0..100_000u64 {
                t.dram_atomic_at(i);
            }
            wl.commit(t);
        }
        let w = wl.finish();
        let sample = &w.tiles[0].dram_atomic_addrs;
        assert!(sample.len() <= 128, "sample grew to {}", sample.len());
        // The sample spans the stream, not just its head.
        assert!(*sample.last().unwrap() > 50_000);
        assert_eq!(w.tiles[0].dram_atomic_words, 100_000);
    }

    #[test]
    fn count_only_recordings_leave_address_samples_empty() {
        let mut wl = WorkloadBuilder::new("t");
        {
            let mut t = wl.tile();
            t.dram_atomic(100);
            t.dram_random_read(100);
            t.foreach_vec(16, |t, i| t.remote_update(i % 4));
            wl.commit(t);
        }
        let w = wl.finish();
        let tile = &w.tiles[0];
        assert!(tile.dram_atomic_addrs.is_empty());
        assert!(tile.dram_random_addrs.is_empty());
        assert!(tile.remote.addr_sampled.is_empty());
    }

    #[test]
    fn decimator_bounds_memory() {
        let mut d: Decimator<u64> = Decimator::new(64);
        for i in 0..100_000u64 {
            d.offer(i);
        }
        assert!(d.items().len() <= 128);
        assert_eq!(d.seen(), 100_000);
        // The sample spans the stream, not just its head.
        assert!(*d.items().last().unwrap() > 50_000);
    }

    #[test]
    #[should_panic(expected = "cannot nest")]
    fn nested_vector_loops_panic() {
        let mut wl = WorkloadBuilder::new("t");
        let mut t = wl.tile();
        t.foreach_vec(4, |t, _| {
            t.foreach_vec(4, |_, _| {});
        });
        wl.commit(t);
    }

    #[test]
    fn reduce_vec_sums() {
        let mut wl = WorkloadBuilder::new("t");
        let mut t = wl.tile();
        let total = t.reduce_vec(10, |_, i| i as Value);
        assert_eq!(total, 45.0);
        wl.commit(t);
    }
}
