//! Performance reports and the Fig. 7 stall breakdown.

use capstan_arch::memdrv::{MemStats, TenantStats};
use capstan_sim::cycles_to_seconds;
use std::fmt;

/// Cycles attributed to each stall source, following the paper's Fig. 7
/// methodology: the synthetic components (Active through Imbalance) are
/// computed with ideal memory; the simulated components (Network, SRAM,
/// DRAM) are "added one at a time" so each captures the *additional*
/// cycles its effect costs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Cycles in which every lane would do useful work.
    pub active: u64,
    /// Scanner overhead (all-zero windows, narrow-window throttling).
    pub scan: u64,
    /// End-to-end DRAM load/store issue time (ideal DRAM).
    pub load_store: u64,
    /// Under-filled vector slots (short inner loops).
    pub vector_length: u64,
    /// Uneven tile sizes across outer-parallel pipelines.
    pub imbalance: u64,
    /// On-chip network and shuffle effects.
    pub network: u64,
    /// SRAM bank conflicts (cycle-level SpMU simulation).
    pub sram: u64,
    /// DRAM bandwidth and latency (the Ramulator-substitute model).
    pub dram: u64,
}

impl Breakdown {
    /// Total cycles across all components.
    pub fn total(&self) -> u64 {
        self.active
            + self.scan
            + self.load_store
            + self.vector_length
            + self.imbalance
            + self.network
            + self.sram
            + self.dram
    }

    /// Each component as a fraction of the total (the Fig. 7 bars).
    pub fn fractions(&self) -> [(&'static str, f64); 8] {
        let t = self.total().max(1) as f64;
        [
            ("Active", self.active as f64 / t),
            ("Scan", self.scan as f64 / t),
            ("Load/Store", self.load_store as f64 / t),
            ("Vector Length", self.vector_length as f64 / t),
            ("Imbalance", self.imbalance as f64 / t),
            ("Network", self.network as f64 / t),
            ("SRAM", self.sram as f64 / t),
            ("DRAM", self.dram as f64 / t),
        ]
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, frac) in self.fractions() {
            write!(f, "{name} {:.1}% ", frac * 100.0)?;
        }
        Ok(())
    }
}

/// The result of simulating one workload on one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Workload name.
    pub name: String,
    /// Total runtime in core cycles (1.6 GHz).
    pub cycles: u64,
    /// Stall attribution.
    pub breakdown: Breakdown,
    /// Outer-parallel pipelines used.
    pub pipelines: usize,
    /// Measured SRAM bank utilization over the replayed trace (0 when the
    /// workload performs no random SRAM accesses).
    pub sram_bank_utilization: f64,
    /// Total DRAM traffic in bytes (after compression).
    pub dram_bytes: u64,
    /// Fraction of lane slots doing useful work.
    pub lane_efficiency: f64,
    /// Cycle-level memory statistics (row conflicts, bank contention,
    /// AG burst counts), rolled up across every region channel and AG
    /// of the multi-channel topology. `Some` only under
    /// `MemTiming::CycleLevel` with a non-ideal memory system; the
    /// analytic mode has no cycle-level observables.
    pub mem: Option<MemStats>,
    /// Per-tenant cycle-level memory statistics, indexed by
    /// `TenantId.0` (one entry per configured memory tenant, including
    /// the single-tenant case). Empty under the analytic mode, which
    /// has no tenant-attributed observables.
    pub mem_tenants: Vec<TenantStats>,
}

impl PerfReport {
    /// Runtime in seconds at the 1.6 GHz core clock.
    pub fn seconds(&self) -> f64 {
        cycles_to_seconds(self.cycles)
    }

    /// Speedup of this report relative to another (higher = this is
    /// faster).
    pub fn speedup_vs(&self, other: &PerfReport) -> f64 {
        other.cycles as f64 / self.cycles.max(1) as f64
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} cycles ({:.3} ms), {} pipelines, lane eff {:.1}%, DRAM {:.1} MiB",
            self.name,
            self.cycles,
            self.seconds() * 1e3,
            self.pipelines,
            self.lane_efficiency * 100.0,
            self.dram_bytes as f64 / (1024.0 * 1024.0),
        )?;
        write!(f, "  breakdown: {}", self.breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_fractions() {
        let b = Breakdown {
            active: 50,
            scan: 10,
            load_store: 10,
            vector_length: 10,
            imbalance: 5,
            network: 5,
            sram: 5,
            dram: 5,
        };
        assert_eq!(b.total(), 100);
        let fr = b.fractions();
        assert_eq!(fr[0], ("Active", 0.5));
        let sum: f64 = fr.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_seconds_and_speedup() {
        let mk = |cycles| PerfReport {
            name: "x".into(),
            cycles,
            breakdown: Breakdown::default(),
            pipelines: 1,
            sram_bank_utilization: 0.0,
            dram_bytes: 0,
            lane_efficiency: 1.0,
            mem: None,
            mem_tenants: Vec::new(),
        };
        let fast = mk(1_600_000);
        let slow = mk(16_000_000);
        assert!((fast.seconds() - 0.001).abs() < 1e-9);
        assert_eq!(fast.speedup_vs(&slow), 10.0);
    }

    #[test]
    fn display_is_nonempty() {
        let b = Breakdown::default();
        assert!(!format!("{b}").is_empty());
    }
}
