#![deny(missing_docs)]

//! Offline shim for the subset of the `proptest` crate API this
//! workspace uses.
//!
//! The build container has no crates.io access, so this in-tree package
//! provides a compatible implementation of the pieces the test suite
//! relies on: the [`Strategy`] trait with `prop_map`, range/tuple/
//! collection/sample strategies, `any::<T>()`, the [`proptest!`] macro,
//! and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case panics with the sampled inputs
//!   reported via the panic message of the failing assertion;
//! * sampling is deterministic per `(test name, case index)`, so
//!   failures always reproduce;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning a `TestCaseError`.

use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic generator threaded through strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed (zero is remapped).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed | 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value below `bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f` (upstream: `Strategy::prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * (rng.unit() as $t)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "anything" strategy (upstream: `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (upstream: `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A collection size specification: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

/// Collection strategies (upstream: `proptest::collection`).
pub mod collection {
    use super::{BTreeSet, SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Samples `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Samples sets by drawing up to `size` elements (duplicates merge,
    /// matching upstream's generation-attempt semantics).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (upstream: `proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses one of `options` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Per-test configuration (upstream: `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over a test name, used to derive a per-test base seed.
pub fn seed_for_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a test module needs (upstream: `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };

    /// Namespaced strategy modules (upstream re-exports these as `prop`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_for_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    $(let $pat = $crate::Strategy::sample(&{ $strat }, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{seed_for_name, TestRng};

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(5);
        for _ in 0..500 {
            let v = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-4.0f32..4.0), &mut rng);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(any::<bool>(), 16), &mut rng);
            assert_eq!(v.len(), 16);
            let s = Strategy::sample(&prop::collection::btree_set(0u32..50, 1..10), &mut rng);
            assert!(s.len() < 10);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(seed_for_name("a::b"), seed_for_name("a::b"));
        assert_ne!(seed_for_name("a::b"), seed_for_name("a::c"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_expands_and_runs(
            xs in prop::collection::vec(0u32..100, 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
            let _: bool = flag;
        }

        #[test]
        fn prop_map_applies(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }
    }
}
