#![deny(missing_docs)]

//! Offline shim for the subset of the `criterion` crate API this
//! workspace's benches use (`Criterion`, benchmark groups, `Bencher`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros).
//!
//! The build container has no crates.io access, so this in-tree package
//! stands in for the real crate. It is a *functional* harness, not a
//! statistical one: each benchmark is warmed up once and then timed for
//! `sample_size` iterations, reporting the mean and best wall time per
//! iteration. Output is a single line per benchmark, suitable for
//! eyeballing regressions and for machine scraping.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one parameterized benchmark (upstream: `BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// A benchmark id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs and times one benchmark body (upstream: `Bencher`).
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    pub mean_ns: f64,
    /// Best nanoseconds per iteration of the last `iter` call.
    pub best_ns: f64,
}

impl Bencher {
    /// Times `f`, recording mean/best wall time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut total = 0.0f64;
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            total += ns;
            best = best.min(ns);
        }
        self.mean_ns = total / self.samples as f64;
        self.best_ns = best;
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        mean_ns: 0.0,
        best_ns: 0.0,
    };
    f(&mut bencher);
    println!(
        "bench: {label:<48} mean {:>12}  best {:>12}  ({samples} samples)",
        human(bencher.mean_ns),
        human(bencher.best_ns),
    );
}

/// A named group of related benchmarks (upstream: `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op; upstream emits summary statistics here).
    pub fn finish(self) {}
}

/// The top-level benchmark driver (upstream: `Criterion`).
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&id.to_string(), self.samples, &mut f);
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits a `main` that runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n).fold(1u64, |a, b| a.wrapping_mul(b) | b)
    }

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("fib", |b| b.iter(|| fib(black_box(1000))));
        group.bench_with_input(BenchmarkId::new("fib", 500), &500u64, |b, &n| {
            b.iter(|| fib(n))
        });
        group.finish();
        c.bench_function("loose", |b| b.iter(|| fib(100)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        benches(&mut c);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
