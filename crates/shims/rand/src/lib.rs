#![deny(missing_docs)]

//! Offline shim for the subset of the `rand` crate API this workspace
//! uses (`SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen_bool`).
//!
//! The build container has no crates.io access, so this in-tree package
//! stands in for the real crate. The generator is **not** the upstream
//! `SmallRng` algorithm — it is xoshiro256**, which is deterministic,
//! seedable, and statistically strong enough for synthetic dataset
//! generation. Every consumer in this repo treats the stream as an
//! opaque seeded source, never as a bit-compatible reproduction of
//! upstream `rand`.

use std::ops::Range;

/// Seedable random number generators (upstream: `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range (upstream:
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Draws one uniform value in `[lo, hi)`.
    fn sample_uniform(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// Ranges that can be sampled uniformly (upstream: `rand::distributions`).
///
/// The single blanket impl over `Range<T>` mirrors upstream so that type
/// inference can flow from the result type back into range literals
/// (e.g. `hub + rng.gen_range(0..64)` infers `usize`).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty sample range");
        T::sample_uniform(self.start, self.end, rng)
    }
}

/// The raw 64-bit generator interface (upstream: `rand::RngCore`).
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers (upstream: `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53-bit uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                // Modulo bias is negligible for the spans used here and
                // irrelevant for synthetic data generation.
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
uniform_unsigned!(usize, u64, u32, u16, u8);

macro_rules! uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i64 - lo as i64) as u64;
                (lo as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
uniform_signed!(i64, i32, i16, i8, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Namespaced generators (upstream: `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding recipe.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same: usize = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40))
            .count();
        assert!(same < 4, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f32..1.0);
            assert!((0.25..1.0).contains(&f));
            let d = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
