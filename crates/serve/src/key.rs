//! Canonical run specification and its content-addressed cache key.
//!
//! A submitted job is fully described by `(experiment, suite scale,
//! memory configuration)` — Capstan's simulated results are
//! deterministic and machine-independent, so that tuple *is* the
//! result's address. The key is an FNV-1a-64 hash over the tuple's
//! canonical snapshot-codec encoding, the same discipline the
//! simulator's checkpoint `config_hash` uses: every field is serialized
//! in one fixed order with floats as exact bit patterns, so the key is
//! invariant under request-field reordering and alternative float
//! spellings, and distinct under any single-field change.

use capstan_bench::Suite;
use capstan_core::config::{mem_record_suffix, MemAddressing, MemTiming, PlanMode};
use capstan_sim::snapshot::{fnv1a_64, SnapshotWriter};

/// Versioned domain tag mixed into every cache key; bump on any change
/// to the canonical encoding so stale keys can never alias new ones.
const KEY_TAG: &str = "capstan-serve-key/v3";

/// One fully specified experiment request: the unit the server queues,
/// batches, caches, and shards.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Experiment name (`table4` ... `extensions`); validated against
    /// `capstan_bench::experiments::ALL_NAMES` at the protocol layer.
    pub experiment: String,
    /// Suite scale: a named preset or the custom
    /// `la=F,graph=F,spmspm=F,conv=F` form (see [`Suite::parse`]). The
    /// raw spelling is kept — it is what worker command lines and
    /// journal headers carry — but the cache key hashes the *parsed*
    /// fingerprint, so `0.5` and `5e-1` address the same result.
    pub scale: String,
    /// DRAM timing mode (`--mem`).
    pub mem: MemTiming,
    /// Scattered-address mode (`--mem-addresses`).
    pub addresses: MemAddressing,
    /// Region-channel count (`--mem-channels`).
    pub channels: usize,
    /// Memory-tenant count (`--mem-tenants`).
    pub tenants: usize,
    /// Where the memory configuration came from (`--plan`): `Fixed`
    /// requests carry it in the fields above; `Auto` requests arrive
    /// with dataset statistics instead, and the server materializes the
    /// planner's choice into those fields before keying. The mode joins
    /// the key (planned rows form their own `+plan` record group); the
    /// raw stats blob does not — two submissions whose stats plan to
    /// the same configuration address the same cached result.
    pub plan: PlanMode,
    /// The encoded `capstan_tensor::stats::TensorStats` blob an `Auto`
    /// submission carried (`None` on fixed requests). Kept for the
    /// planner, never hashed.
    pub stats: Option<String>,
}

impl RunSpec {
    /// A spec for `experiment` with every other field at the CLI
    /// default: `medium` scale, analytic timing, synthetic addressing,
    /// one channel.
    pub fn new(experiment: &str) -> RunSpec {
        RunSpec {
            experiment: experiment.to_string(),
            scale: "medium".to_string(),
            mem: MemTiming::default(),
            addresses: MemAddressing::default(),
            channels: 1,
            tenants: 1,
            plan: PlanMode::default(),
            stats: None,
        }
    }

    /// The parsed suite, or a message for an invalid scale spec.
    pub fn suite(&self) -> Result<Suite, String> {
        Suite::parse(&self.scale)
    }

    /// The bench-row suffix this memory configuration runs under
    /// (shared definition: [`mem_record_suffix`]).
    pub fn suffix(&self) -> String {
        mem_record_suffix(
            self.mem,
            self.addresses,
            self.channels,
            self.tenants,
            self.plan,
        )
    }

    /// The bench-record row name this spec produces: the experiment
    /// name plus the record-group suffix.
    pub fn row_name(&self) -> String {
        format!("{}{}", self.experiment, self.suffix())
    }

    /// The content-addressed cache key: FNV-1a-64 over the canonical
    /// encoding of experiment name, dataset fingerprint, and memory
    /// configuration. Fails only when the scale spec does not parse
    /// (the protocol layer rejects such requests before keying).
    pub fn cache_key(&self) -> Result<u64, String> {
        let suite = self.suite()?;
        let mut w = SnapshotWriter::new();
        write_str(&mut w, KEY_TAG);
        write_str(&mut w, &self.experiment);
        // Dataset fingerprint: the generated inputs are a pure function
        // of the suite's scale factors (exact f64 bits, see
        // `Suite::fingerprint`), so it stands in for hashing the
        // datasets themselves.
        w.write_u64(suite.fingerprint());
        write_str(&mut w, self.mem.tag());
        write_str(&mut w, self.addresses.tag());
        w.write_u64(self.channels as u64);
        w.write_u64(self.tenants as u64);
        // The plan *mode* is keyed (planned rows are their own record
        // group) but the stats blob is not: the server has already
        // materialized the planned configuration into the hashed fields
        // above, so any data that plans identically — or a fixed request
        // spelling the same configuration by hand under `Auto`'s suffix —
        // must hit the same cache line.
        write_str(&mut w, self.plan.tag());
        Ok(fnv1a_64(w.as_bytes()))
    }
}

/// Length-prefixed string write, snapshot-codec style (the writer has
/// primitive-only methods; strings ride as counted bytes so `ab`+`c`
/// can never alias `a`+`bc`).
fn write_str(w: &mut SnapshotWriter, s: &str) {
    w.write_len(s.len());
    for b in s.bytes() {
        w.write_u8(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_spelling_invariant() {
        let spec = RunSpec::new("fig7");
        assert_eq!(spec.cache_key().unwrap(), spec.cache_key().unwrap());
        let mut small = RunSpec::new("fig7");
        small.scale = "small".to_string();
        let mut spelled = RunSpec::new("fig7");
        spelled.scale = "la=4e-2,graph=1.5e-2,spmspm=5e-1,conv=1e-1".to_string();
        assert_eq!(small.cache_key().unwrap(), spelled.cache_key().unwrap());
    }

    #[test]
    fn every_single_field_change_moves_the_key() {
        let base = RunSpec::new("fig7");
        let key = base.cache_key().unwrap();
        let mut other = base.clone();
        other.experiment = "fig4".to_string();
        assert_ne!(other.cache_key().unwrap(), key);
        let mut other = base.clone();
        other.scale = "small".to_string();
        assert_ne!(other.cache_key().unwrap(), key);
        let mut other = base.clone();
        other.mem = MemTiming::CycleLevel;
        assert_ne!(other.cache_key().unwrap(), key);
        let mut other = base.clone();
        other.addresses = MemAddressing::Recorded;
        assert_ne!(other.cache_key().unwrap(), key);
        let mut other = base.clone();
        other.channels = 4;
        assert_ne!(other.cache_key().unwrap(), key);
        let mut other = base.clone();
        other.tenants = 2;
        assert_ne!(other.cache_key().unwrap(), key);
        let mut other = base.clone();
        other.plan = PlanMode::Auto;
        assert_ne!(other.cache_key().unwrap(), key);
    }

    #[test]
    fn stats_blob_is_not_keyed_but_plan_mode_is() {
        // Two auto submissions with different stats blobs that plan to
        // the same materialized configuration must share a cache line.
        let mut a = RunSpec::new("fig7");
        a.plan = PlanMode::Auto;
        a.stats = Some("s1:10:10:5:3:2:6:4:5:4".to_string());
        let mut b = a.clone();
        b.stats = Some("s1:12:12:6:4:2:8:5:6:5".to_string());
        assert_eq!(a.cache_key().unwrap(), b.cache_key().unwrap());
        assert_ne!(
            a.cache_key().unwrap(),
            RunSpec::new("fig7").cache_key().unwrap()
        );
    }

    #[test]
    fn row_names_carry_the_record_group_suffix() {
        let mut spec = RunSpec::new("table13-atomics");
        assert_eq!(spec.row_name(), "table13-atomics");
        spec.mem = MemTiming::CycleLevel;
        spec.channels = 4;
        assert_eq!(spec.row_name(), "table13-atomics+cycle+ch4");
        spec.tenants = 2;
        assert_eq!(spec.row_name(), "table13-atomics+cycle+ch4+mt2");
        spec.plan = PlanMode::Auto;
        assert_eq!(spec.row_name(), "table13-atomics+cycle+ch4+mt2+plan");
    }

    #[test]
    fn bad_scales_fail_key_derivation() {
        let mut spec = RunSpec::new("fig7");
        spec.scale = "la=NaN,graph=0.015,spmspm=0.5,conv=0.1".to_string();
        assert!(spec.cache_key().is_err());
    }
}
