//! Experiment driver: regenerates every table and figure of the paper,
//! records a machine-readable performance trajectory, and fronts the
//! simulation service (`--serve` / `--submit`).
//!
//! ```text
//! experiments [NAMES...] [--scale small|medium|large|la=F,graph=F,spmspm=F,conv=F]
//!             [--mem analytic|cycle]
//!             [--mem-addresses synthetic|recorded] [--mem-channels N]
//!             [--mem-fastforward on|off]
//!             [--bench-out PATH] [--bench-base PATH] [--no-bench-out]
//!             [--resume DIR]
//! experiments --serve ADDR [--serve-shards N] [--serve-workdir DIR]
//! experiments [NAMES...] --submit ADDR [--scale ...] [--mem ...]
//!             [--mem-addresses ...] [--mem-channels N]
//! experiments --serve-stats ADDR | --serve-shutdown ADDR
//! ```
//!
//! `NAMES` are `table4..table13`, `table13-atomics`, `table13-channels`,
//! `table13-recorded`, `fig4..fig7`, `ablations`, `extensions`,
//! `planner`, or `all` (the default). Repeated names are deduplicated (first
//! occurrence wins), so `experiments fig7 fig7` cannot write duplicate
//! bench rows that would later confuse `bench-gate`'s record matching.
//! Unknown `--flags` and flags missing their value are rejected with a
//! usage message and exit code 2 — they are never misread as experiment
//! names. Full-suite (`all`) runs write `BENCH_core.json` — wall
//! seconds, simulated cycles, and simulated cycles per wall second for
//! every experiment — so successive PRs have a comparable perf
//! baseline. Subset runs do NOT write it by default (a partial file
//! would silently replace the committed full-suite baseline); pass
//! `--bench-out PATH` to record one anyway, or `--no-bench-out` to
//! suppress the full-suite write.
//!
//! `--scale` accepts the named presets or a custom
//! `la=F,graph=F,spmspm=F,conv=F` factor spec (see
//! `capstan_bench::Suite::parse`); non-finite or non-positive factors
//! are rejected up front.
//!
//! `--mem cycle` switches every constructed configuration to the
//! cycle-level AG-backed memory mode (`MemTiming::CycleLevel`) and tags
//! each bench-record row with a `+cycle` suffix: cycle-level simulated
//! cycles intentionally differ from analytic ones, so the two modes form
//! separate record groups in the baseline and the gate compares like
//! with like. `--mem-addresses recorded` switches the cycle-level
//! mode's scattered addresses from the synthetic uniform streams to the
//! recorder's real sampled address vectors
//! (`MemAddressing::Recorded`) and appends a `+rec` suffix.
//! `--mem-channels N` sets the cycle-level mode's region-channel count
//! (per-AG channels behind a crossbar; default 1) and, when N > 1,
//! appends a `+chN` suffix for the same reason — a different topology
//! simulates a different cycle count. `--mem-tenants N` sets the
//! cycle-level mode's memory-tenant count (tiles attributed round-robin
//! to N tenants whose traffic interleaves through the driver; the
//! default is 1) and, when N > 1, appends a `+mtN` suffix. The `+rec`,
//! `+chN`, and `+mtN` suffixes
//! apply regardless of `--mem`, because some experiments (e.g.
//! `table13-atomics`) exercise the cycle-level driver internally even
//! under the analytic default and therefore pick up the overrides too —
//! an unlabeled row would silently diverge from the committed baseline.
//! (`table13-channels`, `table13-recorded`, and `table-multitenant` are
//! the exceptions: they set their channel counts / addressing / tenant
//! mixes per configuration and ignore the process defaults.) The suffix rules live in one place,
//! `capstan_core::config::mem_record_suffix`, shared with the serving
//! layer, so the CLI, the server, and the journal headers can never
//! disagree on a row's record group. `--mem-fastforward on|off`
//! selects between
//! the cycle-level mode's event-driven fast path (the default) and the
//! per-cycle reference loop; it adds **no** suffix because the two
//! modes are bit-identical in simulated cycles — rows stay comparable
//! and only `cycles_per_second` moves. The `CAPSTAN_MEM_FASTFORWARD`
//! environment variable overrides the flag (useful for A/B-ing a
//! build without changing its command line). `--plan auto` routes the
//! format-generic experiment slots through the density-driven planner
//! (`capstan_plan`): each matrix's statistics pick its sparse format
//! via `TensorStats::suggest`, and every row gains a `+plan` suffix —
//! planned rows are their own record group because a re-planned format
//! legitimately simulates a different cycle count. In `--submit` mode
//! `--plan auto` instead sends dataset statistics to the server and
//! lets *it* plan the memory configuration (so `--mem`/
//! `--mem-addresses`/`--mem-channels` are rejected alongside it).
//! `--bench-base PATH` seeds the written record
//! with an existing baseline's rows (same-name rows replaced, via
//! `capstan_bench::gate::merge` — duplicate row names or a scale
//! conflict on either side are loud errors, never a silently shadowed
//! row), which is
//! how the committed `BENCH_core.json` carries the analytic full suite
//! plus the cycle-mode, multi-channel, and recorded-address smoke
//! groups (the full recipe is in `crates/bench/README.md`):
//!
//! ```text
//! experiments all --scale small
//! experiments table13-atomics table13-channels table13-recorded fig7 --mem cycle \
//!     --scale small --bench-base BENCH_core.json --bench-out BENCH_core.json
//! experiments table13-atomics fig7 --mem cycle --mem-channels 4 --scale small \
//!     --bench-base BENCH_core.json --bench-out BENCH_core.json
//! experiments table13-recorded fig7 --mem cycle --mem-addresses recorded \
//!     --scale small --bench-base BENCH_core.json --bench-out BENCH_core.json
//! ```
//!
//! `--resume DIR` makes the run crash-safe and resumable: every
//! completed experiment is journaled in `DIR` (report text plus exact
//! wall/cycle numbers, all written atomically — see
//! `capstan_bench::journal`), and a re-run with the same `--resume DIR`
//! replays the journaled experiments byte-for-byte from the journal
//! instead of re-running them, then continues with the rest. The
//! resumed invocation's stdout and its `--bench-out` record are
//! byte-identical to an uninterrupted run's (the kill-and-resume CI job
//! enforces this). A journal written under different `--scale` /
//! suffix flags is rejected loudly.
//!
//! `--serve ADDR` turns the binary into the simulation service
//! (`capstan_serve`): it binds `ADDR`, prints
//! `capstan-serve listening on <addr>` once ready, and answers
//! newline-framed requests — batching compatible submissions, caching
//! results content-addressed, and sharding batches across worker
//! subprocesses (which are plain `--resume`/`--bench-out` invocations
//! of this same binary). `--submit ADDR` is the matching client: it
//! submits the named experiments (with the usual `--scale`/`--mem`/...
//! flags describing the *request*, not this process) and prints the
//! returned reports in command-line order — byte-identical to running
//! the same experiments directly. `--serve-stats` prints the server's
//! counters as `k=v` lines; `--serve-shutdown` stops it.

use capstan_bench::experiments as exp;
use capstan_bench::gate::{self, BenchEntry, BenchRecord};
use capstan_bench::Suite;
use capstan_core::config::{
    mem_record_suffix, set_default_mem_addressing, set_default_mem_channels,
    set_default_mem_fast_forward, set_default_mem_tenants, set_default_mem_timing,
    set_default_plan_mode, MemAddressing, MemTiming, PlanMode,
};
use capstan_serve::client;
use capstan_serve::key::RunSpec;
use capstan_serve::server::{Server, ServerConfig};
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

const USAGE: &str = "usage: experiments [NAMES...] \
[--scale small|medium|large|la=F,graph=F,spmspm=F,conv=F] \
[--mem analytic|cycle] [--mem-addresses synthetic|recorded] [--mem-channels N] \
[--mem-tenants N] [--mem-fastforward on|off] [--plan fixed|auto] [--bench-out PATH] \
[--bench-base PATH] [--no-bench-out] [--resume DIR]
       experiments --serve ADDR [--serve-shards N] [--serve-workdir DIR]
       experiments [NAMES...] --submit ADDR [--scale SPEC] [--mem MODE] \
[--mem-addresses MODE] [--mem-channels N] [--mem-tenants N] [--plan fixed|auto]
       experiments --serve-stats ADDR
       experiments --serve-shutdown ADDR";

/// Parsed command line (process-default setters are applied by `main`,
/// not here, so parsing stays a pure, unit-testable function).
#[derive(Debug, Default, PartialEq)]
struct Cli {
    /// Experiment names in command-line order, `all` not yet expanded.
    which: Vec<String>,
    /// Validated scale spec (default `medium`).
    scale: Option<String>,
    /// `--mem` override (last one wins, like the process setters).
    mem: Option<MemTiming>,
    /// `--mem-addresses` override.
    mem_addresses: Option<MemAddressing>,
    /// `--mem-channels` override.
    mem_channels: Option<usize>,
    /// `--mem-tenants` override.
    mem_tenants: Option<usize>,
    /// `--mem-fastforward` override (no bench-row suffix: the two drain
    /// modes are bit-identical in simulated cycles).
    mem_fast_forward: Option<bool>,
    /// `--plan` override: `auto` routes format-generic experiment
    /// slots through the density-driven planner and tags rows `+plan`.
    plan: Option<PlanMode>,
    bench_out: Option<String>,
    bench_base: Option<String>,
    no_bench_out: bool,
    /// `--resume` journal directory (crash-safe resumable runs).
    resume: Option<String>,
    /// `--serve` listen address (server mode).
    serve: Option<String>,
    /// `--submit` server address (client mode).
    submit: Option<String>,
    /// `--serve-stats` server address (print the counters and exit).
    serve_stats: Option<String>,
    /// `--serve-shutdown` server address.
    serve_shutdown: Option<String>,
    /// `--serve-shards` worker-process cap per batch group.
    serve_shards: Option<usize>,
    /// `--serve-workdir` scratch-directory override.
    serve_workdir: Option<String>,
}

/// Parses the argument list. Unknown `--flags`, flags missing their
/// value, unparsable values, and contradictory mode combinations are
/// all errors (the caller prints the usage and exits 2) — they must
/// never fall through as experiment names, where they would only
/// surface later as a confusing "unknown experiment" failure or a
/// panicking `.expect`.
fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        // A following flag is not a value: `--bench-out --no-bench-out`
        // must exit 2, not write a record to a file named
        // `--no-bench-out` while silently dropping the second flag.
        match it.next() {
            Some(v) if !v.starts_with('-') => Ok(v.to_string()),
            _ => Err(format!("{flag} needs a value")),
        }
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let spec = value("--scale", &mut it)?;
                Suite::parse(&spec)?;
                cli.scale = Some(spec);
            }
            "--mem" => {
                let raw = value("--mem", &mut it)?;
                cli.mem = Some(
                    MemTiming::parse(&raw)
                        .ok_or_else(|| format!("unknown memory mode `{raw}` (analytic|cycle)"))?,
                );
            }
            "--mem-addresses" => {
                let raw = value("--mem-addresses", &mut it)?;
                cli.mem_addresses = Some(MemAddressing::parse(&raw).ok_or_else(|| {
                    format!("unknown addressing mode `{raw}` (synthetic|recorded)")
                })?);
            }
            "--mem-channels" => {
                let raw = value("--mem-channels", &mut it)?;
                let n: usize = raw.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("--mem-channels needs a positive integer, got `{raw}`")
                })?;
                cli.mem_channels = Some(n);
            }
            "--mem-tenants" => {
                let raw = value("--mem-tenants", &mut it)?;
                let max = capstan_core::config::MAX_TENANTS;
                let n: usize = raw
                    .parse()
                    .ok()
                    .filter(|&n| (1..=max).contains(&n))
                    .ok_or_else(|| {
                        format!("--mem-tenants needs an integer in 1..={max}, got `{raw}`")
                    })?;
                cli.mem_tenants = Some(n);
            }
            "--mem-fastforward" => {
                cli.mem_fast_forward = Some(match value("--mem-fastforward", &mut it)?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("unknown fast-forward mode `{other}` (on|off)")),
                });
            }
            "--plan" => {
                let raw = value("--plan", &mut it)?;
                cli.plan = Some(
                    PlanMode::parse(&raw)
                        .ok_or_else(|| format!("unknown plan mode `{raw}` (fixed|auto)"))?,
                );
            }
            "--bench-out" => cli.bench_out = Some(value("--bench-out", &mut it)?),
            "--bench-base" => cli.bench_base = Some(value("--bench-base", &mut it)?),
            "--no-bench-out" => cli.no_bench_out = true,
            "--resume" => cli.resume = Some(value("--resume", &mut it)?),
            "--serve" => cli.serve = Some(value("--serve", &mut it)?),
            "--submit" => cli.submit = Some(value("--submit", &mut it)?),
            "--serve-stats" => cli.serve_stats = Some(value("--serve-stats", &mut it)?),
            "--serve-shutdown" => cli.serve_shutdown = Some(value("--serve-shutdown", &mut it)?),
            "--serve-shards" => {
                let raw = value("--serve-shards", &mut it)?;
                let n: usize = raw.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("--serve-shards needs a positive integer, got `{raw}`")
                })?;
                cli.serve_shards = Some(n);
            }
            "--serve-workdir" => cli.serve_workdir = Some(value("--serve-workdir", &mut it)?),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            name => cli.which.push(name.to_string()),
        }
    }
    check_modes(&cli)?;
    Ok(cli)
}

/// Rejects contradictory mode combinations: the four service verbs are
/// mutually exclusive, `--serve`/`--serve-stats`/`--serve-shutdown`
/// take no experiment selection at all (submissions carry their own
/// configuration), and `--submit` cannot combine with the
/// local-run-only recording/resume flags — the server owns journals
/// and records, and silently ignoring the flags would look like they
/// worked.
fn check_modes(cli: &Cli) -> Result<(), String> {
    let modes = [
        ("--serve", cli.serve.is_some()),
        ("--submit", cli.submit.is_some()),
        ("--serve-stats", cli.serve_stats.is_some()),
        ("--serve-shutdown", cli.serve_shutdown.is_some()),
    ];
    let picked: Vec<&str> = modes
        .iter()
        .filter(|(_, on)| *on)
        .map(|(n, _)| *n)
        .collect();
    if picked.len() > 1 {
        return Err(format!("{} are mutually exclusive", picked.join(" and ")));
    }
    if (cli.serve_shards.is_some() || cli.serve_workdir.is_some()) && cli.serve.is_none() {
        return Err("--serve-shards/--serve-workdir only apply with --serve".to_string());
    }
    if cli.serve.is_some() || cli.serve_stats.is_some() || cli.serve_shutdown.is_some() {
        let mode = picked[0];
        if !cli.which.is_empty() {
            return Err(format!("{mode} takes no experiment names"));
        }
        if cli.scale.is_some()
            || cli.mem.is_some()
            || cli.mem_addresses.is_some()
            || cli.mem_channels.is_some()
            || cli.mem_tenants.is_some()
            || cli.mem_fast_forward.is_some()
            || cli.plan.is_some()
            || cli.bench_out.is_some()
            || cli.bench_base.is_some()
            || cli.no_bench_out
            || cli.resume.is_some()
        {
            return Err(format!(
                "{mode} takes no run flags (submissions carry their own configuration)"
            ));
        }
    }
    if cli.submit.is_some()
        && (cli.bench_out.is_some()
            || cli.bench_base.is_some()
            || cli.no_bench_out
            || cli.resume.is_some()
            || cli.mem_fast_forward.is_some())
    {
        return Err(
            "--submit cannot combine with --bench-out/--bench-base/--no-bench-out/--resume/\
             --mem-fastforward (the server owns recording, resume, and drain mode)"
                .to_string(),
        );
    }
    // A planned submission delegates the memory configuration to the
    // server (the protocol enforces the same rule on the wire); a
    // hand-spelled configuration alongside `--plan auto` would be
    // silently overridden by the planner. Direct (local) runs keep the
    // combination: the server's own workers are spawned with the
    // materialized flags plus `--plan auto` for the row suffix.
    if cli.submit.is_some()
        && cli.plan == Some(PlanMode::Auto)
        && (cli.mem.is_some() || cli.mem_addresses.is_some() || cli.mem_channels.is_some())
    {
        return Err(
            "--submit --plan auto cannot combine with --mem/--mem-addresses/--mem-channels \
             (the server's planner chooses the memory configuration)"
                .to_string(),
        );
    }
    Ok(())
}

/// Expands `all` into the canonical experiment list and deduplicates,
/// keeping the first occurrence of each name — duplicate CLI names (or
/// `all` alongside an explicit member) would otherwise run twice and
/// write duplicate bench rows, which `bench-gate`'s name-keyed record
/// matching cannot disambiguate.
fn expand_and_dedup(which: &[String]) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    which
        .iter()
        .flat_map(|w| {
            if w == "all" {
                exp::ALL_NAMES.iter().map(|s| s.to_string()).collect()
            } else {
                vec![w.clone()]
            }
        })
        .filter(|name| seen.insert(name.clone()))
        .collect()
}

/// Exits 2 with a message — the shared fate of every harness-level
/// (non-experiment) failure: bad flags, a corrupt `--bench-base`, an
/// unusable `--resume` journal, an unbindable `--serve` address.
fn die(msg: &str) -> ! {
    eprintln!("experiments: {msg}");
    std::process::exit(2);
}

fn bench_json(scale: &str, records: &[BenchEntry]) -> String {
    let mut json = String::new();
    let total_wall: f64 = records.iter().map(|r| r.wall_seconds).sum();
    let total_cycles: u64 = records.iter().map(|r| r.simulated_cycles).sum();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"{}\",", gate::SCHEMA);
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(
        json,
        "  \"threads\": {},",
        capstan_par::thread_count(usize::MAX)
    );
    let _ = writeln!(json, "  \"experiments\": [");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_seconds\": {:.6}, \"simulated_cycles\": {}, \"cycles_per_second\": {:.1}}}{}",
            r.name,
            r.wall_seconds,
            r.simulated_cycles,
            r.cycles_per_second,
            if i + 1 < records.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"total_wall_seconds\": {total_wall:.6},");
    let _ = writeln!(json, "  \"total_simulated_cycles\": {total_cycles}");
    let _ = writeln!(json, "}}");
    json
}

/// A fresh bench row: the suffixed name plus the computed throughput
/// (zero for experiments whose wall time rounds to zero).
fn entry_row(name: &str, suffix: &str, wall_seconds: f64, simulated_cycles: u64) -> BenchEntry {
    BenchEntry {
        name: format!("{name}{suffix}"),
        wall_seconds,
        simulated_cycles,
        cycles_per_second: if wall_seconds > 0.0 {
            simulated_cycles as f64 / wall_seconds
        } else {
            0.0
        },
    }
}

/// `--serve`: bind, announce readiness on stdout, run until a shutdown
/// request.
fn run_server(cli: &Cli) -> ! {
    let addr = cli.serve.as_deref().expect("serve mode");
    // The server and its workers are the same binary — the service
    // needs no second executable, and a worker trivially agrees with
    // its server about report and record formats.
    let worker_exe = std::env::current_exe()
        .unwrap_or_else(|e| die(&format!("cannot locate the worker binary: {e}")));
    let work_dir = cli
        .serve_workdir
        .as_deref()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("capstan-serve-{}", std::process::id()))
        });
    let mut config = ServerConfig::new(worker_exe, work_dir);
    if let Some(n) = cli.serve_shards {
        config.shards = n;
    }
    let server =
        Server::bind(addr, config).unwrap_or_else(|e| die(&format!("cannot bind {addr}: {e}")));
    let local = server
        .local_addr()
        .unwrap_or_else(|e| die(&format!("cannot read the bound address: {e}")));
    println!("capstan-serve listening on {local}");
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => std::process::exit(0),
        Err(e) => die(&format!("server failed: {e}")),
    }
}

/// `--submit`: send every named experiment to the server concurrently,
/// then print the returned reports in command-line order — the same
/// bytes a direct run of the same names would print.
fn run_submit(cli: &Cli) -> ! {
    let addr = cli.submit.as_deref().expect("submit mode");
    let scale = cli.scale.clone().unwrap_or_else(|| "medium".to_string());
    let mut which = cli.which.clone();
    if which.is_empty() {
        which.push("all".to_string());
    }
    // A planned submission ships dataset statistics instead of a memory
    // configuration (check_modes already rejected explicit --mem/...).
    // The suite's anchor linear-algebra dataset at the submitted scale
    // stands in for the sweep: its stats are a pure function of the
    // scale spec, so identical submissions plan — and content-address —
    // identically.
    let stats = (cli.plan == Some(PlanMode::Auto)).then(|| {
        let suite = Suite::parse(&scale).unwrap_or_else(|e| die(&e));
        let m = capstan_tensor::gen::Dataset::Ckt11752.generate_scaled(suite.la_scale);
        capstan_tensor::stats::TensorStats::compute(&m).encode()
    });
    let specs: Vec<RunSpec> = expand_and_dedup(&which)
        .iter()
        .map(|name| {
            let mut spec = RunSpec::new(name);
            spec.scale = scale.clone();
            spec.mem = cli.mem.unwrap_or_default();
            spec.addresses = cli.mem_addresses.unwrap_or_default();
            spec.channels = cli.mem_channels.unwrap_or(1);
            spec.tenants = cli.mem_tenants.unwrap_or(1);
            spec.plan = cli.plan.unwrap_or_default();
            spec.stats = stats.clone();
            spec
        })
        .collect();
    // Concurrent submissions land in the server's linger window and
    // batch into one sweep; reports still print in input order.
    let threads = specs.len().clamp(1, 16);
    let results =
        capstan_par::par_map_threads(&specs, threads, |spec| client::submit(addr, spec, None));
    let mut failed = false;
    for (spec, result) in specs.iter().zip(&results) {
        match result {
            Ok(reply) => print!("{}", reply.report),
            Err(e) => {
                eprintln!("experiments: submit {} failed: {e}", spec.experiment);
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(err) => {
            eprintln!("experiments: {err}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    // Service verbs run before any process-default setter is touched:
    // the serving process simulates nothing itself, and a submission's
    // configuration travels in the request.
    if cli.serve.is_some() {
        run_server(&cli);
    }
    if cli.submit.is_some() {
        run_submit(&cli);
    }
    if let Some(addr) = cli.serve_stats.as_deref() {
        match client::stats(addr) {
            Ok(counters) => {
                for (name, count) in counters {
                    println!("{name}={count}");
                }
                std::process::exit(0);
            }
            Err(e) => die(&format!("stats request to {addr} failed: {e}")),
        }
    }
    if let Some(addr) = cli.serve_shutdown.as_deref() {
        match client::shutdown(addr) {
            Ok(()) => std::process::exit(0),
            Err(e) => die(&format!("shutdown request to {addr} failed: {e}")),
        }
    }

    let scale_name = cli.scale.unwrap_or_else(|| "medium".to_string());
    let suite = match Suite::parse(&scale_name) {
        Ok(suite) => suite,
        Err(e) => die(&e),
    };
    // Setters follow the last flag occurrence (parse keeps
    // last-one-wins semantics); the bench-row suffix comes from the
    // shared `mem_record_suffix` rule.
    if let Some(mode) = cli.mem {
        set_default_mem_timing(mode);
    }
    if let Some(mode) = cli.mem_addresses {
        set_default_mem_addressing(mode);
    }
    if let Some(n) = cli.mem_channels {
        set_default_mem_channels(n);
    }
    if let Some(n) = cli.mem_tenants {
        set_default_mem_tenants(n);
    }
    // No suffix: fast-forward changes wall-clock speed only, never
    // simulated cycles, so its rows stay in the same record group.
    if let Some(enabled) = cli.mem_fast_forward {
        set_default_mem_fast_forward(enabled);
    }
    if let Some(mode) = cli.plan {
        set_default_plan_mode(mode);
    }
    let suffix = mem_record_suffix(
        cli.mem.unwrap_or_default(),
        cli.mem_addresses.unwrap_or_default(),
        cli.mem_channels.unwrap_or(1),
        cli.mem_tenants.unwrap_or(1),
        cli.plan.unwrap_or_default(),
    );

    let mut which = cli.which;
    if which.is_empty() {
        which.push("all".to_string());
    }
    // Only a full-suite *analytic, synthetic, single-channel* run
    // defaults to writing the baseline: a subset record — or a
    // cycle-mode, recorded-address, or multi-channel run, whose rows
    // are all renamed with a suffix — would silently replace the
    // committed full-suite file. Suffixed records must name their
    // output explicitly (and merge via --bench-base to keep every
    // group).
    let mut bench_out = cli.bench_out;
    if bench_out.is_none()
        && !cli.no_bench_out
        && suffix.is_empty()
        && which.iter().any(|w| w == "all")
    {
        bench_out = Some("BENCH_core.json".to_string());
    }
    if cli.no_bench_out {
        bench_out = None;
    }
    // Expand `all` so the perf record stays per-experiment, and drop
    // duplicate names so no two bench rows can share a name.
    let expanded = expand_and_dedup(&which);

    // Open the resume journal (if any) up front, before any experiment
    // runs: a corrupt or mismatched journal must fail the invocation
    // loudly, not after minutes of re-simulation.
    let mut journal = cli.resume.as_deref().map(|dir| {
        match capstan_bench::journal::Journal::open_or_create(
            std::path::Path::new(dir),
            &scale_name,
            &suffix,
        ) {
            Ok(j) => j,
            Err(e) => die(&e),
        }
    });

    let mut records: Vec<BenchEntry> = Vec::new();
    let mut failed = false;
    for name in &expanded {
        // A journaled experiment replays from the journal: its stored
        // report goes to stdout verbatim and its stored wall/cycle
        // numbers (exact f64 bits) become the bench row, so a resumed
        // sweep's output byte-diffs clean against an uninterrupted one.
        if let Some(entry) = journal.as_ref().and_then(|j| j.completed(name)) {
            let report = match journal.as_ref().expect("journal present").report_text(name) {
                Ok(text) => text,
                Err(e) => die(&e),
            };
            print!("{report}");
            records.push(entry_row(
                name,
                &suffix,
                entry.wall_seconds,
                entry.simulated_cycles,
            ));
            continue;
        }
        let cycles_before = capstan_sim::stats::simulated_cycles();
        let start = Instant::now();
        match exp::run_by_name(name, &suite) {
            Some(report) => {
                let wall_seconds = start.elapsed().as_secs_f64();
                let simulated_cycles = capstan_sim::stats::simulated_cycles() - cycles_before;
                if let Some(j) = journal.as_mut() {
                    let entry = capstan_bench::journal::JournalEntry {
                        wall_seconds,
                        simulated_cycles,
                    };
                    if let Err(e) = j.record(name, entry, &report) {
                        die(&e);
                    }
                }
                records.push(entry_row(name, &suffix, wall_seconds, simulated_cycles));
            }
            None => {
                eprintln!("unknown experiment `{name}`");
                failed = true;
            }
        }
    }

    // Seed the record with an existing baseline's rows (same-name rows
    // replaced by this run), so one file can carry several record
    // groups — e.g. the analytic full suite plus the `+cycle` smoke.
    // A missing, truncated, or otherwise corrupt baseline — or one
    // whose rows collide with themselves (duplicate names) or with
    // this run's scale — is a loud harness error (exit 2): silently
    // merging against garbage would quietly discard or shadow
    // committed baseline groups.
    if let Some(base_path) = cli.bench_base {
        let text = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| die(&format!("could not read --bench-base {base_path}: {e}")));
        let base = gate::parse_record(&text)
            .unwrap_or_else(|e| die(&format!("malformed --bench-base {base_path}: {e}")));
        let fresh = BenchRecord {
            schema: gate::SCHEMA.to_string(),
            scale: scale_name.clone(),
            experiments: records,
        };
        records = gate::merge(&base, &fresh)
            .unwrap_or_else(|e| die(&format!("--bench-base {base_path}: {e}")))
            .experiments;
    }

    if let Some(path) = bench_out {
        let json = bench_json(&scale_name, &records);
        // Atomic write (temp file + rename): a crash mid-write must
        // never leave a truncated baseline for the gate to choke on.
        match capstan_sim::snapshot::atomic_write(std::path::Path::new(&path), json.as_bytes()) {
            Ok(()) => eprintln!("wrote {path} ({} experiments)", records.len()),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn plain_names_and_flags_parse() {
        let cli = parse_args(&args(&[
            "fig7",
            "--scale",
            "small",
            "--mem",
            "cycle",
            "--mem-addresses",
            "recorded",
            "--mem-channels",
            "4",
            "--mem-tenants",
            "2",
            "--mem-fastforward",
            "off",
            "--bench-out",
            "OUT.json",
        ]))
        .unwrap();
        assert_eq!(cli.which, vec!["fig7"]);
        assert_eq!(cli.scale.as_deref(), Some("small"));
        assert_eq!(cli.mem, Some(MemTiming::CycleLevel));
        assert_eq!(cli.mem_addresses, Some(MemAddressing::Recorded));
        assert_eq!(cli.mem_channels, Some(4));
        assert_eq!(cli.mem_tenants, Some(2));
        assert_eq!(cli.mem_fast_forward, Some(false));
        assert_eq!(cli.bench_out.as_deref(), Some("OUT.json"));
        assert!(!cli.no_bench_out);
    }

    #[test]
    fn custom_scale_specs_parse_and_bad_ones_are_rejected() {
        let cli = parse_args(&args(&[
            "fig7",
            "--scale",
            "la=0.04,graph=0.015,spmspm=0.5,conv=0.1",
        ]))
        .unwrap();
        assert_eq!(
            cli.scale.as_deref(),
            Some("la=0.04,graph=0.015,spmspm=0.5,conv=0.1")
        );
        assert!(parse_args(&args(&["--scale", "la=NaN,graph=1,spmspm=1,conv=1"])).is_err());
        assert!(parse_args(&args(&["--scale", "la=inf,graph=1,spmspm=1,conv=1"])).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_not_treated_as_experiments() {
        let err = parse_args(&args(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        // Single-dash typos are flags too, never experiment names.
        assert!(parse_args(&args(&["-mem", "cycle"])).is_err());
    }

    #[test]
    fn resume_flag_parses_and_needs_a_value() {
        let cli = parse_args(&args(&["fig7", "--resume", "jdir"])).unwrap();
        assert_eq!(cli.resume.as_deref(), Some("jdir"));
        let err = parse_args(&args(&["--resume", "--no-bench-out"])).unwrap_err();
        assert!(err.contains("--resume needs a value"), "{err}");
    }

    #[test]
    fn missing_flag_values_are_errors_not_panics() {
        for flag in [
            "--scale",
            "--mem",
            "--mem-addresses",
            "--mem-channels",
            "--mem-tenants",
            "--mem-fastforward",
            "--plan",
            "--bench-out",
            "--bench-base",
            "--resume",
            "--serve",
            "--submit",
            "--serve-stats",
            "--serve-shutdown",
            "--serve-shards",
            "--serve-workdir",
        ] {
            let err = parse_args(&args(&[flag])).unwrap_err();
            assert!(err.contains("needs a value"), "{flag}: {err}");
        }
    }

    #[test]
    fn a_following_flag_is_not_a_value() {
        // The classic silent misparse: the flag after a value-less flag
        // must not be swallowed as its value.
        let err = parse_args(&args(&["fig7", "--bench-out", "--no-bench-out"])).unwrap_err();
        assert!(err.contains("--bench-out needs a value"), "{err}");
        assert!(parse_args(&args(&["--mem", "--scale", "small"])).is_err());
    }

    #[test]
    fn bad_flag_values_are_errors() {
        assert!(parse_args(&args(&["--scale", "gigantic"])).is_err());
        assert!(parse_args(&args(&["--mem", "psychic"])).is_err());
        assert!(parse_args(&args(&["--mem-addresses", "vibes"])).is_err());
        assert!(parse_args(&args(&["--mem-channels", "0"])).is_err());
        assert!(parse_args(&args(&["--mem-channels", "many"])).is_err());
        assert!(parse_args(&args(&["--mem-tenants", "0"])).is_err());
        assert!(parse_args(&args(&["--mem-tenants", "99"])).is_err());
        assert!(parse_args(&args(&["--mem-fastforward", "maybe"])).is_err());
        assert!(parse_args(&args(&["--serve", "a:1", "--serve-shards", "0"])).is_err());
    }

    #[test]
    fn service_verbs_are_mutually_exclusive() {
        let err = parse_args(&args(&["--serve", "a:1", "--submit", "b:2"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err =
            parse_args(&args(&["--serve-stats", "a:1", "--serve-shutdown", "a:1"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn serve_takes_no_names_or_run_flags() {
        let err = parse_args(&args(&["fig7", "--serve", "a:1"])).unwrap_err();
        assert!(err.contains("takes no experiment names"), "{err}");
        let err = parse_args(&args(&["--serve", "a:1", "--mem", "cycle"])).unwrap_err();
        assert!(err.contains("takes no run flags"), "{err}");
        let err = parse_args(&args(&["--serve-stats", "a:1", "--scale", "small"])).unwrap_err();
        assert!(err.contains("takes no run flags"), "{err}");
        // The serve tuning flags only mean something to a server.
        let err = parse_args(&args(&["fig7", "--serve-shards", "2"])).unwrap_err();
        assert!(err.contains("only apply with --serve"), "{err}");
    }

    #[test]
    fn submit_rejects_local_recording_flags_but_keeps_run_config() {
        let cli = parse_args(&args(&[
            "fig7", "--submit", "a:1", "--scale", "small", "--mem", "cycle",
        ]))
        .unwrap();
        assert_eq!(cli.submit.as_deref(), Some("a:1"));
        assert_eq!(cli.mem, Some(MemTiming::CycleLevel));
        for bad in [
            vec!["--submit", "a:1", "--resume", "jdir"],
            vec!["--submit", "a:1", "--bench-out", "OUT.json"],
            vec!["--submit", "a:1", "--bench-base", "BENCH.json"],
            vec!["--submit", "a:1", "--no-bench-out"],
            vec!["--submit", "a:1", "--mem-fastforward", "off"],
        ] {
            let err = parse_args(&args(&bad)).unwrap_err();
            assert!(err.contains("--submit cannot combine"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn repeated_flags_keep_last_one_wins() {
        let cli = parse_args(&args(&["--mem", "cycle", "--mem", "analytic"])).unwrap();
        assert_eq!(cli.mem, Some(MemTiming::Analytic));
    }

    #[test]
    fn plan_flag_parses_and_is_policed_per_mode() {
        let cli = parse_args(&args(&["planner", "--plan", "auto"])).unwrap();
        assert_eq!(cli.plan, Some(PlanMode::Auto));
        assert!(parse_args(&args(&["--plan", "maybe"])).is_err());
        assert!(parse_args(&args(&["--plan"])).is_err());
        // Direct runs may combine --plan auto with memory flags (the
        // server's own workers do exactly that); submissions may not.
        assert!(parse_args(&args(&["fig7", "--plan", "auto", "--mem-channels", "4"])).is_ok());
        for bad in [
            vec![
                "fig7", "--submit", "a:1", "--plan", "auto", "--mem", "cycle",
            ],
            vec![
                "fig7",
                "--submit",
                "a:1",
                "--plan",
                "auto",
                "--mem-addresses",
                "recorded",
            ],
            vec![
                "fig7",
                "--submit",
                "a:1",
                "--plan",
                "auto",
                "--mem-channels",
                "4",
            ],
        ] {
            let err = parse_args(&args(&bad)).unwrap_err();
            assert!(err.contains("--submit --plan auto"), "{bad:?}: {err}");
        }
        // --plan fixed alongside memory flags stays fine in submit mode.
        assert!(parse_args(&args(&[
            "fig7", "--submit", "a:1", "--plan", "fixed", "--mem", "cycle"
        ]))
        .is_ok());
        // Serve verbs take no run flags; --plan is a run flag.
        let err = parse_args(&args(&["--serve", "a:1", "--plan", "auto"])).unwrap_err();
        assert!(err.contains("takes no run flags"), "{err}");
        let err = parse_args(&args(&["--serve-stats", "a:1", "--plan", "auto"])).unwrap_err();
        assert!(err.contains("takes no run flags"), "{err}");
    }

    #[test]
    fn duplicate_experiment_names_are_deduplicated() {
        let out = expand_and_dedup(&args(&["fig7", "fig7", "table4", "fig7"]));
        assert_eq!(out, args(&["fig7", "table4"]));
    }

    #[test]
    fn all_expands_once_and_absorbs_duplicates() {
        let out = expand_and_dedup(&args(&["fig7", "all", "table4"]));
        // `fig7` keeps its first position; `all`'s expansion skips it;
        // `table4` (already expanded from `all`) is not repeated.
        assert_eq!(out.iter().filter(|n| *n == "fig7").count(), 1);
        assert_eq!(out.iter().filter(|n| *n == "table4").count(), 1);
        assert_eq!(out.len(), exp::ALL_NAMES.len());
        assert_eq!(out[0], "fig7");
        let mut sorted = out.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), out.len(), "no duplicates after dedup");
    }
}
