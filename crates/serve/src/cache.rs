//! The content-addressed result cache.
//!
//! Keys come from [`crate::key::RunSpec::cache_key`]; values are the
//! completed job outcomes (report text plus the bench row). The cache
//! is unbounded by design: outcomes are a few kilobytes of text, and a
//! server's working set is the experiment matrix — finite and small.
//! Hit/miss counters live here so the server's `STATS` reply can prove
//! dedup claims ("N identical submissions simulated once") directly
//! from the cache's own accounting.

use capstan_bench::gate::BenchEntry;
use std::collections::HashMap;
use std::sync::Arc;

/// A completed job: what the cache stores and clients receive.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The bench-record row (name includes the record-group suffix).
    pub row: BenchEntry,
    /// The experiment's exact report text — byte-identical to a direct
    /// `experiments` invocation's stdout for this experiment.
    pub report: String,
}

/// Content-addressed map from cache key to completed outcome, with
/// hit/miss accounting.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: HashMap<u64, Arc<JobOutcome>>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Looks up a completed outcome, counting a hit when present.
    /// Absence is *not* counted here — a missing key may coalesce onto
    /// an in-flight job rather than start a new one; the server calls
    /// [`record_miss`](Self::record_miss) only when it actually
    /// enqueues fresh work.
    pub fn lookup(&mut self, key: u64) -> Option<Arc<JobOutcome>> {
        let found = self.map.get(&key).cloned();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Counts one miss: a request that no cached or in-flight job could
    /// serve, i.e. work actually reaching a core.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Stores a completed outcome.
    pub fn insert(&mut self, key: u64, outcome: Arc<JobOutcome>) {
        self.map.insert(key, outcome);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Recorded misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str) -> Arc<JobOutcome> {
        Arc::new(JobOutcome {
            row: BenchEntry {
                name: name.to_string(),
                wall_seconds: 0.5,
                simulated_cycles: 42,
                cycles_per_second: 84.0,
            },
            report: format!("{name} report\n"),
        })
    }

    #[test]
    fn lookup_counts_hits_but_not_absences() {
        let mut cache = ResultCache::new();
        assert!(cache.lookup(7).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        cache.record_miss();
        cache.insert(7, outcome("fig4"));
        assert_eq!(cache.lookup(7).unwrap().row.simulated_cycles, 42);
        assert!(cache.lookup(8).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }
}
