//! Blocking client for the serve protocol: one connection per request,
//! used by `experiments --submit` and the black-box conformance tests.

use crate::key::RunSpec;
use crate::proto::{self, FrameReader, ProtoError, SubmitReply, MAGIC};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Submits one run spec and blocks until the server delivers the
/// outcome (or relays a typed error). `timeout` bounds each socket
/// read; `None` waits as long as the simulation takes.
pub fn submit(
    addr: &str,
    spec: &RunSpec,
    timeout: Option<Duration>,
) -> Result<SubmitReply, ProtoError> {
    let mut reader = send_frame(addr, &proto::format_submit(spec), timeout)?;
    let header = reader.read_line(proto::MAX_FRAME)?;
    let (mut reply, len) = proto::parse_submit_header(&header)?;
    let payload = reader.read_exact_bytes(len)?;
    reply.report = String::from_utf8(payload)
        .map_err(|_| ProtoError::BadFrame("report payload is not UTF-8".to_string()))?;
    Ok(reply)
}

/// Fetches the server's counters as `(name, value)` pairs in wire
/// order.
pub fn stats(addr: &str) -> Result<Vec<(String, u64)>, ProtoError> {
    let mut reader = send_frame(addr, &format!("{MAGIC} STATS\n"), DEFAULT_TIMEOUT)?;
    let line = reader.read_line(proto::MAX_FRAME)?;
    let rest = proto::expect_ok(&line)?;
    let mut out = Vec::new();
    for field in rest.split(' ').filter(|t| !t.is_empty()) {
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| ProtoError::BadFrame("stats field is not key=value".to_string()))?;
        let v = v
            .parse::<u64>()
            .map_err(|_| ProtoError::BadFrame(format!("stats field `{k}` is not a count")))?;
        out.push((k.to_string(), v));
    }
    Ok(out)
}

/// Liveness probe: `Ok(())` once the server answers `pong`.
pub fn ping(addr: &str) -> Result<(), ProtoError> {
    expect_word(addr, &format!("{MAGIC} PING\n"), "pong")
}

/// Asks the server to stop accepting work and exit once in-flight jobs
/// drain.
pub fn shutdown(addr: &str) -> Result<(), ProtoError> {
    expect_word(addr, &format!("{MAGIC} SHUTDOWN\n"), "bye")
}

const DEFAULT_TIMEOUT: Option<Duration> = Some(Duration::from_secs(10));

/// Connects, writes one request frame, and returns the reader for the
/// reply.
fn send_frame(
    addr: &str,
    frame: &str,
    timeout: Option<Duration>,
) -> Result<FrameReader<TcpStream>, ProtoError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| ProtoError::Internal(format!("cannot connect to {addr}: {e}")))?;
    let _ = stream.set_read_timeout(timeout);
    let mut writer = stream
        .try_clone()
        .map_err(|e| ProtoError::Internal(format!("cannot clone the socket: {e}")))?;
    writer
        .write_all(frame.as_bytes())
        .map_err(|e| ProtoError::Internal(format!("cannot send the request: {e}")))?;
    Ok(FrameReader::new(stream))
}

fn expect_word(addr: &str, frame: &str, word: &str) -> Result<(), ProtoError> {
    let mut reader = send_frame(addr, frame, DEFAULT_TIMEOUT)?;
    let line = reader.read_line(proto::MAX_FRAME)?;
    let rest = proto::expect_ok(&line)?;
    if rest == word {
        Ok(())
    } else {
        Err(ProtoError::BadFrame(format!(
            "expected `{word}`, got `{rest}`"
        )))
    }
}
