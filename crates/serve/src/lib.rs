#![deny(missing_docs)]

//! # capstan-serve
//!
//! Simulation-as-a-service: a batched, content-addressed experiment
//! server over plain threaded TCP (std-only — this workspace builds
//! fully offline, so there is no async runtime and no serialization
//! dependency; the wire protocol is newline-framed text).
//!
//! Capstan's simulated-cycle counts are deterministic and
//! machine-independent — the repo pins them with golden tests and a CI
//! bench gate — which makes experiment results *content-addressable*: a
//! request is fully described by `(experiment, suite scale, memory
//! configuration)`, and any two identical requests must produce
//! byte-identical report text. The server exploits that end to end:
//!
//! * **Content-addressed cache** ([`key`]): every request canonicalizes
//!   to an FNV-1a-64 key over the snapshot-codec encoding of its
//!   experiment name, dataset fingerprint ([`capstan_bench::Suite::fingerprint`])
//!   and memory configuration — the same hashing discipline as the
//!   simulator's checkpoint `config_hash`. A repeated request is served
//!   from the cache without touching a core; concurrent duplicates
//!   coalesce onto one in-flight job.
//! * **Batching and sharding** ([`server`]): compatible queued requests
//!   (same scale and memory configuration) are drained into one batch,
//!   split across worker *processes* — each a plain `experiments`
//!   invocation with a `--resume` journal and a `--bench-out` record —
//!   run concurrently under `capstan_par::par_map`, and their
//!   `BENCH`-schema record groups merged via `capstan_bench::gate::merge`.
//! * **Crash-safe workers**: each shard runs under the journal/checkpoint
//!   machinery from the resumable-harness layer, so a killed worker is
//!   respawned and *resumes* — journaled rows replay byte-for-byte
//!   instead of recomputing.
//!
//! The `experiments` binary (which lives in this crate so it can be
//! both the first server and the first client) exposes the whole layer
//! as `--serve ADDR` / `--submit ADDR`; [`proto`] documents the wire
//! format and its typed errors, and [`client`] is the blocking client
//! used by `--submit` and the black-box conformance tests.

pub mod cache;
pub mod client;
pub mod key;
pub mod proto;
pub mod server;
