//! The wire protocol: newline-framed text over TCP.
//!
//! One request per connection. The client sends a single frame — one
//! `\n`-terminated line, at most [`MAX_FRAME`] bytes — and reads one
//! response. Requests:
//!
//! ```text
//! capstan-serve/v1 SUBMIT experiment=fig7 scale=small mem=cycle addresses=synthetic channels=1 tenants=1
//! capstan-serve/v1 STATS
//! capstan-serve/v1 PING
//! capstan-serve/v1 SHUTDOWN
//! ```
//!
//! `SUBMIT` fields may appear in **any order**; only `experiment` is
//! required (the rest default to the CLI defaults: `medium`, `analytic`,
//! `synthetic`, `1`, `1`). Unknown fields, duplicated fields, unparsable
//! values, and non-finite scale factors are all typed errors — a typo
//! must never silently fall back to a default and simulate the wrong
//! thing.
//!
//! A planned submission replaces the memory-configuration fields with
//! dataset statistics and lets the server choose:
//!
//! ```text
//! capstan-serve/v1 SUBMIT experiment=planner plan=auto stats=s1:4096:4096:163840:4096:40:1720320:81:4096:28561
//! ```
//!
//! `plan=auto` **requires** `stats=` (an encoded
//! [`capstan_tensor::stats::TensorStats`] blob) and **rejects** explicit
//! `mem=`/`addresses=`/`channels=` — the planner owns those choices —
//! while `stats=` without `plan=auto` is equally an error. Responses:
//!
//! ```text
//! capstan-serve/v1 OK cache=miss key=<16 hex> name=fig7+cycle cycles=365168 wall=<16 hex> cps=<16 hex> report=<len>
//! <len bytes of report text>
//! capstan-serve/v1 STATS submits=4 cache_hits=2 ...
//! capstan-serve/v1 ERR unknown-experiment no experiment named `fig99`
//! ```
//!
//! `wall`/`cps` travel as exact `f64` bit patterns (hex), the journal's
//! discipline, so a relayed bench row is bit-equal to the server's. The
//! report payload is length-delimited raw bytes — report text is
//! multi-line, so it cannot ride in a newline-framed field.
//!
//! Every failure mode an attacker-shaped client can produce — truncated
//! frames, oversized payloads, stalled sockets, binary garbage — maps
//! to a typed [`ProtoError`] that is written back (best-effort) as an
//! `ERR` line and closes the connection: never a panic, never a hung
//! handler thread.

use crate::key::RunSpec;
use capstan_bench::experiments as exp;
use capstan_bench::gate::BenchEntry;
use capstan_bench::Suite;
use capstan_core::config::{MemAddressing, MemTiming, PlanMode};
use capstan_tensor::stats::TensorStats;
use std::io::Read;

/// Protocol magic + version token opening every frame; bump on any wire
/// change.
pub const MAGIC: &str = "capstan-serve/v1";

/// Hard cap on request-frame length. Generous: the longest legitimate
/// request (a custom scale spec plus every field) is under 200 bytes.
pub const MAX_FRAME: usize = 4096;

/// Cap on the length-delimited report payload a client will accept.
/// The largest real report (full `table12` at `large` scale) is tens of
/// kilobytes; 16 MiB is paranoia headroom, not a target.
pub const MAX_REPORT: usize = 16 << 20;

/// Upper bound on `channels=` — matches the widest topology the memory
/// model is exercised at, with headroom; a absurd channel count would
/// otherwise make a worker allocate per-channel state unboundedly.
pub const MAX_CHANNELS: usize = 1024;

/// Upper bound on `tenants=` — the driver's own
/// `capstan_arch::memdrv::MAX_TENANTS` cap, re-validated at the wire so
/// a bad count is a typed request error instead of a worker panic.
pub const MAX_TENANTS: usize = capstan_core::config::MAX_TENANTS;

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or fetch the cached result of) one experiment.
    Submit(RunSpec),
    /// Report the server's counters.
    Stats,
    /// Liveness probe (readiness loops in CI).
    Ping,
    /// Stop accepting connections and exit once in-flight work drains.
    Shutdown,
}

/// Every way a request or a connection can fail, each with a stable
/// wire code. `WorkerFailed`/`Internal` are server-side job failures
/// relayed to the waiting client; the rest are request-side.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    /// The frame is not this protocol: wrong magic, unknown verb, or
    /// non-UTF-8 bytes.
    BadFrame(String),
    /// The frame is well-formed but a field is invalid (unknown or
    /// duplicated field, bad value, non-finite scale factor, ...).
    BadRequest(String),
    /// `experiment=` names no known experiment.
    UnknownExperiment(String),
    /// The frame exceeded the length cap without a newline.
    Oversized(usize),
    /// The peer closed the connection mid-frame or mid-payload.
    Truncated,
    /// The peer stalled past the read timeout.
    Timeout,
    /// A worker process failed permanently (after retries).
    WorkerFailed(String),
    /// A server-side invariant broke (unreachable in healthy runs).
    Internal(String),
}

impl ProtoError {
    /// The stable wire code for this error.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::BadFrame(_) => "bad-frame",
            ProtoError::BadRequest(_) => "bad-request",
            ProtoError::UnknownExperiment(_) => "unknown-experiment",
            ProtoError::Oversized(_) => "oversized",
            ProtoError::Truncated => "truncated",
            ProtoError::Timeout => "timeout",
            ProtoError::WorkerFailed(_) => "worker-failed",
            ProtoError::Internal(_) => "internal",
        }
    }

    /// Human-readable detail (no newlines — it rides in an `ERR` line).
    pub fn detail(&self) -> String {
        let raw = match self {
            ProtoError::BadFrame(m)
            | ProtoError::BadRequest(m)
            | ProtoError::WorkerFailed(m)
            | ProtoError::Internal(m) => m.clone(),
            ProtoError::UnknownExperiment(name) => format!("no experiment named `{name}`"),
            ProtoError::Oversized(limit) => {
                format!("frame exceeds the {limit}-byte limit")
            }
            ProtoError::Truncated => "connection closed mid-frame".to_string(),
            ProtoError::Timeout => "peer stalled past the read timeout".to_string(),
        };
        raw.replace(['\n', '\r'], " ")
    }

    /// The one-line wire form: `capstan-serve/v1 ERR <code> <detail>`.
    pub fn to_wire(&self) -> String {
        format!("{MAGIC} ERR {} {}\n", self.code(), self.detail())
    }

    /// Reconstructs a relayed error from its wire code and detail.
    pub fn from_wire(code: &str, detail: &str) -> ProtoError {
        let detail = detail.to_string();
        match code {
            "bad-frame" => ProtoError::BadFrame(detail),
            "bad-request" => ProtoError::BadRequest(detail),
            "unknown-experiment" => ProtoError::UnknownExperiment(detail),
            "oversized" => ProtoError::Oversized(MAX_FRAME),
            "truncated" => ProtoError::Truncated,
            "timeout" => ProtoError::Timeout,
            "worker-failed" => ProtoError::WorkerFailed(detail),
            _ => ProtoError::Internal(format!("{code}: {detail}")),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code(), self.detail())
    }
}

/// Parses one request line (without its trailing newline).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let mut tokens = line.split(' ').filter(|t| !t.is_empty());
    let magic = tokens.next().unwrap_or("");
    if magic != MAGIC {
        return Err(ProtoError::BadFrame(format!(
            "expected `{MAGIC}`, got `{}`",
            truncate_for_log(magic)
        )));
    }
    let verb = tokens.next().unwrap_or("");
    let fields: Vec<&str> = tokens.collect();
    match verb {
        "SUBMIT" => parse_submit(&fields).map(Request::Submit),
        "STATS" | "PING" | "SHUTDOWN" => {
            if let Some(extra) = fields.first() {
                return Err(ProtoError::BadRequest(format!(
                    "{verb} takes no fields, got `{}`",
                    truncate_for_log(extra)
                )));
            }
            Ok(match verb {
                "STATS" => Request::Stats,
                "PING" => Request::Ping,
                _ => Request::Shutdown,
            })
        }
        other => Err(ProtoError::BadFrame(format!(
            "unknown verb `{}`",
            truncate_for_log(other)
        ))),
    }
}

/// Parses `SUBMIT` fields (any order, each at most once) into a
/// [`RunSpec`], validating every value: the experiment name against the
/// canonical list, the scale spec through [`Suite::parse`] (which
/// rejects NaN/inf/non-positive factors), and the memory fields through
/// their canonical-tag parsers.
fn parse_submit(fields: &[&str]) -> Result<RunSpec, ProtoError> {
    let mut spec = RunSpec::new("");
    let mut seen_experiment = false;
    let mut seen = std::collections::HashSet::new();
    for field in fields {
        let (key, value) = field.split_once('=').ok_or_else(|| {
            ProtoError::BadRequest(format!(
                "field `{}` is not key=value",
                truncate_for_log(field)
            ))
        })?;
        if !seen.insert(key.to_string()) {
            return Err(ProtoError::BadRequest(format!(
                "field `{key}` given more than once"
            )));
        }
        match key {
            "experiment" => {
                if !exp::ALL_NAMES.contains(&value) {
                    return Err(ProtoError::UnknownExperiment(value.to_string()));
                }
                spec.experiment = value.to_string();
                seen_experiment = true;
            }
            "scale" => {
                Suite::parse(value).map_err(ProtoError::BadRequest)?;
                spec.scale = value.to_string();
            }
            "mem" => {
                spec.mem = MemTiming::parse(value).ok_or_else(|| {
                    ProtoError::BadRequest(format!(
                        "unknown memory mode `{value}` (analytic|cycle)"
                    ))
                })?;
            }
            "addresses" => {
                spec.addresses = MemAddressing::parse(value).ok_or_else(|| {
                    ProtoError::BadRequest(format!(
                        "unknown addressing mode `{value}` (synthetic|recorded)"
                    ))
                })?;
            }
            "channels" => {
                spec.channels = value
                    .parse()
                    .ok()
                    .filter(|n| (1..=MAX_CHANNELS).contains(n))
                    .ok_or_else(|| {
                        ProtoError::BadRequest(format!(
                            "channels must be an integer in 1..={MAX_CHANNELS}, got `{value}`"
                        ))
                    })?;
            }
            "tenants" => {
                spec.tenants = value
                    .parse()
                    .ok()
                    .filter(|n| (1..=MAX_TENANTS).contains(n))
                    .ok_or_else(|| {
                        ProtoError::BadRequest(format!(
                            "tenants must be an integer in 1..={MAX_TENANTS}, got `{value}`"
                        ))
                    })?;
            }
            "plan" => {
                spec.plan = PlanMode::parse(value).ok_or_else(|| {
                    ProtoError::BadRequest(format!("unknown plan mode `{value}` (fixed|auto)"))
                })?;
            }
            "stats" => {
                if TensorStats::parse(value).is_none() {
                    return Err(ProtoError::BadRequest(format!(
                        "stats blob `{}` is not a valid encoded TensorStats",
                        truncate_for_log(value)
                    )));
                }
                spec.stats = Some(value.to_string());
            }
            other => {
                return Err(ProtoError::BadRequest(format!(
                    "unknown field `{}`",
                    truncate_for_log(other)
                )))
            }
        }
    }
    if !seen_experiment {
        return Err(ProtoError::BadRequest(
            "SUBMIT needs an experiment= field".to_string(),
        ));
    }
    // Field-combination rules for planned submissions: `plan=auto`
    // delegates the memory configuration to the server, so it must
    // carry the statistics the planner needs and must not also spell a
    // configuration by hand; a stray `stats=` on a fixed request would
    // be silently ignored, which this protocol never does.
    if spec.plan == PlanMode::Auto {
        if spec.stats.is_none() {
            return Err(ProtoError::BadRequest(
                "plan=auto needs a stats= field".to_string(),
            ));
        }
        for planned in ["mem", "addresses", "channels"] {
            if seen.contains(planned) {
                return Err(ProtoError::BadRequest(format!(
                    "plan=auto chooses the memory configuration; drop `{planned}=`"
                )));
            }
        }
    } else if spec.stats.is_some() {
        return Err(ProtoError::BadRequest(
            "stats= is only meaningful with plan=auto".to_string(),
        ));
    }
    Ok(spec)
}

/// Formats a `SUBMIT` frame for `spec` (canonical field order; the
/// server accepts any order). Planned specs emit `plan=auto stats=...`
/// and omit the memory-configuration fields the planner owns — the
/// frame must satisfy the same combination rules `parse_submit`
/// enforces.
pub fn format_submit(spec: &RunSpec) -> String {
    if spec.plan == PlanMode::Auto {
        return format!(
            "{MAGIC} SUBMIT experiment={} scale={} tenants={} plan=auto stats={}\n",
            spec.experiment,
            spec.scale,
            spec.tenants,
            spec.stats.as_deref().unwrap_or("")
        );
    }
    format!(
        "{MAGIC} SUBMIT experiment={} scale={} mem={} addresses={} channels={} tenants={}\n",
        spec.experiment,
        spec.scale,
        spec.mem.tag(),
        spec.addresses.tag(),
        spec.channels,
        spec.tenants
    )
}

/// The parsed `OK` response to a `SUBMIT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReply {
    /// How the request was satisfied: `miss` (this request started the
    /// simulation), `join` (coalesced onto an in-flight duplicate), or
    /// `hit` (served from the completed-result cache).
    pub cache: String,
    /// The request's content-addressed cache key.
    pub key: u64,
    /// The bench-record row (exact `f64` bits relayed for the timing
    /// fields).
    pub row: BenchEntry,
    /// The experiment's report text.
    pub report: String,
}

/// Formats the `OK` header line + report payload for a completed job.
pub fn format_submit_reply(cache: &str, key: u64, row: &BenchEntry, report: &str) -> Vec<u8> {
    let mut out = format!(
        "{MAGIC} OK cache={cache} key={key:016x} name={} cycles={} wall={:016x} cps={:016x} report={}\n",
        row.name,
        row.simulated_cycles,
        row.wall_seconds.to_bits(),
        row.cycles_per_second.to_bits(),
        report.len()
    )
    .into_bytes();
    out.extend_from_slice(report.as_bytes());
    out
}

/// Parses a response header line; for `OK cache=...` submit replies the
/// caller must then read the `report=<len>` payload bytes and attach
/// them. Returns the reply with an empty `report` plus the payload
/// length.
pub fn parse_submit_header(line: &str) -> Result<(SubmitReply, usize), ProtoError> {
    let rest = expect_ok(line)?;
    let mut cache = None;
    let mut key = None;
    let mut name = None;
    let mut cycles = None;
    let mut wall = None;
    let mut cps = None;
    let mut report_len = None;
    for field in rest.split(' ').filter(|t| !t.is_empty()) {
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| bad_reply("field is not key=value"))?;
        match k {
            "cache" => cache = Some(v.to_string()),
            "key" => key = Some(parse_hex64(v)?),
            "name" => name = Some(v.to_string()),
            "cycles" => {
                cycles = Some(v.parse::<u64>().map_err(|_| bad_reply("bad cycles"))?);
            }
            "wall" => wall = Some(f64::from_bits(parse_hex64(v)?)),
            "cps" => cps = Some(f64::from_bits(parse_hex64(v)?)),
            "report" => {
                let len = v
                    .parse::<usize>()
                    .map_err(|_| bad_reply("bad report length"))?;
                if len > MAX_REPORT {
                    return Err(bad_reply("report length exceeds the client cap"));
                }
                report_len = Some(len);
            }
            _ => return Err(bad_reply("unknown reply field")),
        }
    }
    match (cache, key, name, cycles, wall, cps, report_len) {
        (Some(cache), Some(key), Some(name), Some(cycles), Some(wall), Some(cps), Some(len)) => {
            Ok((
                SubmitReply {
                    cache,
                    key,
                    row: BenchEntry {
                        name,
                        wall_seconds: wall,
                        simulated_cycles: cycles,
                        cycles_per_second: cps,
                    },
                    report: String::new(),
                },
                len,
            ))
        }
        _ => Err(bad_reply("reply is missing fields")),
    }
}

/// Validates a response header line: relays `ERR` lines as their typed
/// error and returns the text after `OK ` otherwise.
pub fn expect_ok(line: &str) -> Result<&str, ProtoError> {
    let rest = line
        .strip_prefix(MAGIC)
        .ok_or_else(|| bad_reply("reply does not start with the protocol magic"))?
        .trim_start();
    if let Some(err) = rest.strip_prefix("ERR ") {
        let (code, detail) = err.split_once(' ').unwrap_or((err, ""));
        return Err(ProtoError::from_wire(code, detail));
    }
    rest.strip_prefix("OK")
        .map(str::trim_start)
        .or_else(|| rest.strip_prefix("STATS").map(str::trim_start))
        .ok_or_else(|| bad_reply("reply is neither OK, STATS, nor ERR"))
}

fn bad_reply(what: &str) -> ProtoError {
    ProtoError::BadFrame(format!("malformed reply: {what}"))
}

fn parse_hex64(v: &str) -> Result<u64, ProtoError> {
    u64::from_str_radix(v, 16).map_err(|_| bad_reply("bad hex field"))
}

/// Caps attacker-controlled text quoted into error messages.
fn truncate_for_log(s: &str) -> String {
    if s.len() <= 32 {
        return s.to_string();
    }
    let mut end = 32;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}...", &s[..end])
}

/// Buffered frame reader over a byte stream: reads newline-delimited
/// header lines without over-reading past a following length-delimited
/// payload, and maps every I/O failure mode to a typed [`ProtoError`]
/// (timeout, truncation, oversize) instead of a panic or a hang.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream (set a read timeout on it first — the reader
    /// turns `WouldBlock`/`TimedOut` into [`ProtoError::Timeout`]).
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Reads one `\n`-terminated line of at most `max` bytes, returning
    /// it without the terminator (a trailing `\r` is also stripped, for
    /// hand-typed netcat sessions). EOF mid-line is [`ProtoError::Truncated`];
    /// `max` bytes without a newline is [`ProtoError::Oversized`].
    pub fn read_line(&mut self, max: usize) -> Result<String, ProtoError> {
        loop {
            if let Some(pos) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let line = &self.buf[self.start..self.start + pos];
                let line = match line.last() {
                    Some(b'\r') => &line[..line.len() - 1],
                    _ => line,
                };
                let text = std::str::from_utf8(line)
                    .map_err(|_| ProtoError::BadFrame("frame is not UTF-8".to_string()))?
                    .to_string();
                self.start += pos + 1;
                return Ok(text);
            }
            if self.buf.len() - self.start >= max {
                return Err(ProtoError::Oversized(max));
            }
            self.fill()?;
        }
    }

    /// Reads exactly `n` payload bytes (after a header line announced
    /// them).
    pub fn read_exact_bytes(&mut self, n: usize) -> Result<Vec<u8>, ProtoError> {
        while self.buf.len() - self.start < n {
            self.fill()?;
        }
        let bytes = self.buf[self.start..self.start + n].to_vec();
        self.start += n;
        Ok(bytes)
    }

    fn fill(&mut self) -> Result<(), ProtoError> {
        // Compact consumed bytes so a long-lived reader cannot grow
        // without bound.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let mut chunk = [0u8; 1024];
        match self.inner.read(&mut chunk) {
            Ok(0) => Err(ProtoError::Truncated),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(ProtoError::Timeout)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(ProtoError::Internal(format!("read failed: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_fields_parse_in_any_order_with_defaults() {
        let a = parse_request(&format!(
            "{MAGIC} SUBMIT experiment=fig7 scale=small mem=cycle channels=4"
        ))
        .unwrap();
        let b = parse_request(&format!(
            "{MAGIC} SUBMIT channels=4 mem=cycle scale=small experiment=fig7"
        ))
        .unwrap();
        assert_eq!(a, b);
        let Request::Submit(spec) = a else {
            panic!("not a submit")
        };
        assert_eq!(spec.experiment, "fig7");
        assert_eq!(spec.addresses, MemAddressing::Synthetic);
        // Defaults: a bare experiment submits at the CLI defaults.
        let Request::Submit(bare) =
            parse_request(&format!("{MAGIC} SUBMIT experiment=fig4")).unwrap()
        else {
            panic!("not a submit")
        };
        assert_eq!(bare.scale, "medium");
        assert_eq!(bare.channels, 1);
        assert_eq!(bare.tenants, 1);
        // Explicit tenants parse and land in the spec.
        let Request::Submit(mt) = parse_request(&format!(
            "{MAGIC} SUBMIT experiment=fig7 mem=cycle tenants=2"
        ))
        .unwrap() else {
            panic!("not a submit")
        };
        assert_eq!(mt.tenants, 2);
    }

    #[test]
    fn planned_submits_parse_validate_and_round_trip() {
        // A valid blob: 4x4, 4 nnz on the diagonal.
        let blob = "s1:4:4:4:4:1:4:1:1:4";
        let Request::Submit(spec) = parse_request(&format!(
            "{MAGIC} SUBMIT experiment=planner plan=auto stats={blob}"
        ))
        .unwrap() else {
            panic!("not a submit")
        };
        assert_eq!(spec.plan, PlanMode::Auto);
        assert_eq!(spec.stats.as_deref(), Some(blob));
        // format_submit emits the planned form and it re-parses equal.
        let line = format_submit(&spec);
        assert!(line.contains("plan=auto"), "{line}");
        assert!(!line.contains("mem="), "{line}");
        assert_eq!(
            parse_request(line.trim_end()).unwrap(),
            Request::Submit(spec)
        );
        // An explicit plan=fixed is accepted and is the default.
        let Request::Submit(fixed) =
            parse_request(&format!("{MAGIC} SUBMIT experiment=planner plan=fixed")).unwrap()
        else {
            panic!("not a submit")
        };
        assert_eq!(fixed, RunSpec::new("planner"));

        // Combination and value errors.
        let cases: &[&str] = &[
            // auto without stats
            &format!("{MAGIC} SUBMIT experiment=planner plan=auto"),
            // stats without auto
            &format!("{MAGIC} SUBMIT experiment=planner stats={blob}"),
            // auto with a hand-spelled memory configuration
            &format!("{MAGIC} SUBMIT experiment=planner plan=auto stats={blob} mem=cycle"),
            &format!("{MAGIC} SUBMIT experiment=planner plan=auto stats={blob} addresses=recorded"),
            &format!("{MAGIC} SUBMIT experiment=planner plan=auto stats={blob} channels=4"),
            // bad values
            &format!("{MAGIC} SUBMIT experiment=planner plan=maybe"),
            &format!("{MAGIC} SUBMIT experiment=planner plan=auto stats=s1:bogus"),
            &format!("{MAGIC} SUBMIT experiment=planner plan=auto stats=s0:4:4:4:4:1:4:1:1:4"),
        ];
        for line in cases {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code(), "bad-request", "{line} -> {err}");
        }
        // tenants stays a fixed-side knob: the planner does not own it.
        let Request::Submit(mt) = parse_request(&format!(
            "{MAGIC} SUBMIT experiment=planner plan=auto stats={blob} tenants=2"
        ))
        .unwrap() else {
            panic!("not a submit")
        };
        assert_eq!(mt.tenants, 2);
    }

    #[test]
    fn request_round_trips_through_format_submit() {
        let mut spec = RunSpec::new("table13-atomics");
        spec.scale = "la=0.04,graph=0.015,spmspm=0.5,conv=0.1".to_string();
        spec.mem = MemTiming::CycleLevel;
        spec.channels = 4;
        spec.tenants = 2;
        let line = format_submit(&spec);
        let parsed = parse_request(line.trim_end()).unwrap();
        assert_eq!(parsed, Request::Submit(spec));
    }

    #[test]
    fn malformed_requests_get_typed_errors() {
        let cases: &[(&str, &str)] = &[
            ("nonsense", "bad-frame"),
            ("capstan-serve/v0 SUBMIT experiment=fig7", "bad-frame"),
            (&format!("{MAGIC} FROBNICATE"), "bad-frame"),
            (&format!("{MAGIC} SUBMIT"), "bad-request"),
            (&format!("{MAGIC} SUBMIT fig7"), "bad-request"),
            (
                &format!("{MAGIC} SUBMIT experiment=fig99"),
                "unknown-experiment",
            ),
            (
                &format!("{MAGIC} SUBMIT experiment=all"),
                "unknown-experiment",
            ),
            (
                &format!("{MAGIC} SUBMIT experiment=fig7 experiment=fig7"),
                "bad-request",
            ),
            (
                &format!("{MAGIC} SUBMIT experiment=fig7 zoom=9"),
                "bad-request",
            ),
            (
                &format!("{MAGIC} SUBMIT experiment=fig7 channels=0"),
                "bad-request",
            ),
            (
                &format!("{MAGIC} SUBMIT experiment=fig7 channels=1000000"),
                "bad-request",
            ),
            (
                &format!("{MAGIC} SUBMIT experiment=fig7 mem=psychic"),
                "bad-request",
            ),
            (
                &format!("{MAGIC} SUBMIT experiment=fig7 tenants=0"),
                "bad-request",
            ),
            (
                &format!("{MAGIC} SUBMIT experiment=fig7 tenants=99"),
                "bad-request",
            ),
            (&format!("{MAGIC} STATS now"), "bad-request"),
        ];
        for (line, code) in cases {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code(), *code, "{line} -> {err}");
        }
    }

    #[test]
    fn nan_and_inf_scale_factors_are_bad_requests() {
        for bad in [
            "la=NaN,graph=0.015,spmspm=0.5,conv=0.1",
            "la=0.04,graph=inf,spmspm=0.5,conv=0.1",
            "la=0.04,graph=0.015,spmspm=-0.5,conv=0.1",
        ] {
            let err =
                parse_request(&format!("{MAGIC} SUBMIT experiment=fig7 scale={bad}")).unwrap_err();
            assert_eq!(err.code(), "bad-request", "{bad} -> {err}");
        }
    }

    #[test]
    fn submit_reply_round_trips_exact_bits() {
        let row = BenchEntry {
            name: "fig7+cycle".to_string(),
            wall_seconds: 0.1 + 0.2,
            simulated_cycles: 365168,
            cycles_per_second: 199729.83,
        };
        let wire = format_submit_reply("miss", 0xdead_beef_0123_4567, &row, "line one\nline two\n");
        let text = String::from_utf8(wire).unwrap();
        let (header, payload) = text.split_once('\n').unwrap();
        let (reply, len) = parse_submit_header(header).unwrap();
        assert_eq!(reply.cache, "miss");
        assert_eq!(reply.key, 0xdead_beef_0123_4567);
        assert_eq!(reply.row.name, row.name);
        assert_eq!(reply.row.wall_seconds.to_bits(), row.wall_seconds.to_bits());
        assert_eq!(
            reply.row.cycles_per_second.to_bits(),
            row.cycles_per_second.to_bits()
        );
        assert_eq!(&payload[..len], "line one\nline two\n");
    }

    #[test]
    fn err_lines_relay_as_typed_errors() {
        let err = ProtoError::UnknownExperiment("fig99".to_string());
        let wire = err.to_wire();
        let relayed = expect_ok(wire.trim_end()).unwrap_err();
        assert_eq!(relayed.code(), "unknown-experiment");
        assert!(relayed.detail().contains("fig99"));
    }

    #[test]
    fn frame_reader_lines_payloads_and_failure_modes() {
        use std::io::Cursor;
        let mut r = FrameReader::new(Cursor::new(b"hello world\r\nBODYrest".to_vec()));
        assert_eq!(r.read_line(64).unwrap(), "hello world");
        assert_eq!(r.read_exact_bytes(4).unwrap(), b"BODY");
        // EOF mid-line is truncation, not a partial line.
        assert_eq!(r.read_line(64).unwrap_err(), ProtoError::Truncated);

        let mut r = FrameReader::new(Cursor::new(vec![b'a'; 100]));
        assert_eq!(r.read_line(16).unwrap_err(), ProtoError::Oversized(16));

        let mut r = FrameReader::new(Cursor::new(vec![0xff, 0xfe, b'\n']));
        assert_eq!(
            r.read_line(16).unwrap_err().code(),
            ProtoError::BadFrame(String::new()).code()
        );
    }
}
