//! The experiment server: queue → cache → batch → shard.
//!
//! One scheduler thread drains a pending-job queue in batches; each
//! batch is grouped by *compatible configuration* — identical `(scale,
//! mem, addresses, channels, tenants, plan)`, i.e. jobs that one `experiments`
//! worker invocation can run together — and each group fans out across up to
//! [`ServerConfig::shards`] worker **processes** driven concurrently by
//! `capstan_par::par_map_threads`. Workers are plain `experiments`
//! subprocess invocations with `--resume <journal>` and `--bench-out
//! <record>`:
//!
//! * Per-request memory configuration needs no in-process plumbing —
//!   the process-default setters (set-once by design) are set by each
//!   worker's own command line.
//! * Crash safety is inherited from the resumable-harness layer: a
//!   worker that dies mid-sweep is respawned with the same journal
//!   directory and *resumes*, replaying completed rows byte-for-byte.
//! * Shard results are `BENCH`-schema record groups, merged with
//!   [`gate::merge`] — the same loud-on-conflict merge the CLI's
//!   `--bench-base` uses — so a duplicated or mis-suffixed row is a
//!   server error, never a silently shadowed result.
//!
//! Completed outcomes land in the content-addressed [`ResultCache`];
//! every waiter on the job's key (the submitter plus any coalesced
//! duplicates) receives the same `Arc`'d outcome.

use crate::cache::{JobOutcome, ResultCache};
use crate::key::RunSpec;
use crate::proto::{self, FrameReader, ProtoError, Request, MAGIC};
use capstan_bench::experiments as exp;
use capstan_bench::gate::{self, BenchRecord};
use capstan_bench::journal::Journal;
use capstan_core::config::{MemAddressing, MemTiming, PlanMode};
use capstan_plan::PlannedConfig;
use capstan_tensor::stats::TensorStats;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// Server tuning and test knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The `experiments` binary workers run (usually
    /// `std::env::current_exe()` — the binary is both server and
    /// worker).
    pub worker_exe: PathBuf,
    /// Scratch directory for per-shard journals, bench records, and
    /// checkpoints (created on bind).
    pub work_dir: PathBuf,
    /// Maximum worker processes per compatibility group.
    pub shards: usize,
    /// How long the scheduler lingers after the first pending job
    /// before draining the queue, so a burst of submissions lands in
    /// one batch.
    pub batch_linger: Duration,
    /// Per-connection socket read timeout (a stalled client gets
    /// [`ProtoError::Timeout`], never a hung handler thread).
    pub read_timeout: Duration,
    /// Request-frame length cap.
    pub max_frame: usize,
    /// Extra environment for every worker spawn (test hook; applied
    /// last, so it can override the server's own settings).
    pub worker_env: Vec<(String, String)>,
    /// Fault-injection test knob: arm exactly one worker spawn (the
    /// first) with `CAPSTAN_FAULT_AFTER_CYCLES=<n>`, so it checkpoints,
    /// kills itself mid-sweep, and exercises the respawn-and-resume
    /// path.
    pub fault_first_worker: Option<u64>,
    /// Spawn attempts per shard before the jobs fail with
    /// [`ProtoError::WorkerFailed`].
    pub worker_attempts: u32,
}

impl ServerConfig {
    /// A config with production defaults for the given worker binary
    /// and scratch directory.
    pub fn new(worker_exe: PathBuf, work_dir: PathBuf) -> ServerConfig {
        ServerConfig {
            worker_exe,
            work_dir,
            shards: 1,
            batch_linger: Duration::from_millis(50),
            read_timeout: Duration::from_secs(10),
            max_frame: proto::MAX_FRAME,
            worker_env: Vec::new(),
            fault_first_worker: None,
            worker_attempts: 3,
        }
    }
}

/// Scheduler/worker counters reported by `STATS` (cache hits and
/// misses live in [`ResultCache`]).
#[derive(Debug, Default)]
struct Counters {
    submits: u64,
    coalesced: u64,
    batches: u64,
    worker_spawns: u64,
    worker_retries: u64,
    rows_resumed: u64,
    errors: u64,
    plans_computed: u64,
    plan_cache_hits: u64,
}

/// One queued job.
#[derive(Debug)]
struct Job {
    key: u64,
    spec: RunSpec,
}

type Delivery = Result<Arc<JobOutcome>, ProtoError>;

/// Mutable server state behind the one lock.
#[derive(Default)]
struct State {
    cache: ResultCache,
    pending: Vec<Job>,
    inflight: HashSet<u64>,
    waiters: HashMap<u64, Vec<mpsc::Sender<Delivery>>>,
    counters: Counters,
    /// Memoized planner decisions keyed by the raw stats blob: the
    /// planner is a pure function of the statistics, so a dataset
    /// resubmitted with identical stats reuses its plan (and, because
    /// the blob never joins the cache key, its cached result too).
    plan_cache: HashMap<String, PlannedConfig>,
}

/// Everything the scheduler, handlers, and shard runners share.
struct Shared {
    config: ServerConfig,
    state: Mutex<State>,
    cv: Condvar,
    stop: AtomicBool,
    group_seq: AtomicU64,
    fault_armed: AtomicBool,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A running server (see [`Server::spawn`]): the bound address plus the
/// accept-loop thread.
pub struct ServerHandle {
    /// The actually bound address (resolves port `0` to the kernel's
    /// pick).
    pub addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Waits for the server to exit (after a `SHUTDOWN` request).
    pub fn join(self) -> std::io::Result<()> {
        self.thread
            .join()
            .unwrap_or_else(|_| Err(std::io::Error::other("server thread panicked")))
    }
}

impl Server {
    /// Binds `addr` and creates the scratch directory. `addr` may use
    /// port `0` to let the kernel pick (tests); query
    /// [`Server::local_addr`] for the result.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&config.work_dir)?;
        let listener = TcpListener::bind(addr)?;
        let fault_armed = AtomicBool::new(config.fault_first_worker.is_some());
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                state: Mutex::new(State::default()),
                cv: Condvar::new(),
                stop: AtomicBool::new(false),
                group_seq: AtomicU64::new(0),
                fault_armed,
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the current thread until a `SHUTDOWN`
    /// request arrives, then drains: the scheduler finishes or fails
    /// queued work, handler threads are joined, and the call returns.
    pub fn run(self) -> std::io::Result<()> {
        // Non-blocking accept so the loop can observe the stop flag; a
        // 5 ms poll is far below human-visible latency and costs
        // nothing next to a simulation.
        self.listener.set_nonblocking(true)?;
        let shared = self.shared;
        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || scheduler_loop(&shared))
        };
        let mut handlers = Vec::new();
        while !shared.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&shared);
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(&shared, stream)
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        shared.cv.notify_all();
        let _ = scheduler.join();
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }

    /// Spawns [`Server::run`] on a new thread and returns the handle
    /// (test harness convenience).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, thread })
    }
}

/// Serves one connection: one request frame, one reply, close. Every
/// failure becomes a best-effort `ERR` line — never a panic, never a
/// hung thread (the read timeout bounds stalled peers).
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(reader_stream);
    let request = reader
        .read_line(shared.config.max_frame)
        .and_then(|line| proto::parse_request(&line));
    let request_failed = request.is_err();
    let reply: Vec<u8> = match request {
        Err(e) => e.to_wire().into_bytes(),
        Ok(Request::Ping) => format!("{MAGIC} OK pong\n").into_bytes(),
        Ok(Request::Stats) => stats_line(shared).into_bytes(),
        Ok(Request::Shutdown) => {
            shared.stop.store(true, Ordering::SeqCst);
            shared.cv.notify_all();
            format!("{MAGIC} OK bye\n").into_bytes()
        }
        Ok(Request::Submit(spec)) => match submit(shared, spec) {
            Ok((cache_tag, key, outcome)) => {
                proto::format_submit_reply(cache_tag, key, &outcome.row, &outcome.report)
            }
            Err(e) => e.to_wire().into_bytes(),
        },
    };
    let mut stream = stream;
    let _ = stream.write_all(&reply);
    let _ = stream.flush();
    if request_failed {
        drain_bounded(&mut stream);
    }
}

/// Best-effort bounded drain of unread request bytes after an error
/// reply: closing a socket with unread data in its receive buffer
/// resets the connection, which can destroy the just-written `ERR`
/// line before the peer reads it (e.g. after an oversized flood). The
/// drain is bounded in both bytes and time (the socket's read timeout),
/// so a hostile peer cannot pin the handler.
fn drain_bounded(stream: &mut TcpStream) {
    use std::io::Read;
    let mut sink = [0u8; 1024];
    let mut budget = 64 * 1024;
    while budget > 0 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget -= n.min(budget),
        }
    }
}

/// The `STATS` reply line, straight from the counters.
fn stats_line(shared: &Arc<Shared>) -> String {
    let st = shared.state.lock().expect("state lock");
    let c = &st.counters;
    format!(
        "{MAGIC} STATS submits={} cache_hits={} coalesced={} misses={} batches={} \
         worker_spawns={} worker_retries={} rows_resumed={} errors={} \
         plans_computed={} plan_cache_hits={}\n",
        c.submits,
        st.cache.hits(),
        c.coalesced,
        st.cache.misses(),
        c.batches,
        c.worker_spawns,
        c.worker_retries,
        c.rows_resumed,
        c.errors,
        c.plans_computed,
        c.plan_cache_hits
    )
}

/// Routes one submission: cache hit → answer immediately; duplicate of
/// a queued/in-flight job → coalesce onto it; otherwise enqueue fresh
/// work. Blocks until the outcome is delivered.
fn submit(
    shared: &Arc<Shared>,
    mut spec: RunSpec,
) -> Result<(&'static str, u64, Arc<JobOutcome>), ProtoError> {
    // An `Auto` submission arrives with dataset statistics instead of a
    // memory configuration; materialize the planner's choice into the
    // spec *before* keying, so equal-planning data content-addresses
    // the same result. Plans are memoized by the raw stats blob.
    if spec.plan == PlanMode::Auto {
        let blob = spec
            .stats
            .clone()
            .ok_or_else(|| ProtoError::BadRequest("plan=auto needs a stats= field".to_string()))?;
        let stats = TensorStats::parse(&blob).ok_or_else(|| {
            ProtoError::BadRequest("stats blob is not a valid encoded TensorStats".to_string())
        })?;
        let planned = {
            let mut st = shared.state.lock().expect("state lock");
            match st.plan_cache.get(&blob).copied() {
                Some(p) => {
                    st.counters.plan_cache_hits += 1;
                    p
                }
                None => {
                    let p = capstan_plan::plan_request(&stats);
                    st.counters.plans_computed += 1;
                    st.plan_cache.insert(blob, p);
                    p
                }
            }
        };
        spec.mem = planned.mem;
        spec.addresses = planned.addresses;
        spec.channels = planned.channels;
    }
    // The protocol layer validated the scale spec, so keying cannot
    // fail on a wire request; belt-and-suspenders for direct callers.
    let key = spec.cache_key().map_err(ProtoError::BadRequest)?;
    if shared.stop.load(Ordering::SeqCst) {
        return Err(ProtoError::Internal("server is shutting down".to_string()));
    }
    let cache_tag;
    let rx;
    {
        let mut st = shared.state.lock().expect("state lock");
        st.counters.submits += 1;
        if let Some(outcome) = st.cache.lookup(key) {
            return Ok(("hit", key, outcome));
        }
        let (tx, receiver) = mpsc::channel();
        rx = receiver;
        if st.inflight.contains(&key) || st.pending.iter().any(|j| j.key == key) {
            st.counters.coalesced += 1;
            cache_tag = "join";
        } else {
            st.cache.record_miss();
            st.pending.push(Job { key, spec });
            cache_tag = "miss";
        }
        st.waiters.entry(key).or_default().push(tx);
        shared.cv.notify_all();
    }
    // Generous bound: `full`-scale cycle-level sweeps run for minutes,
    // not hours; an hour without a delivery means the scheduler died.
    match rx.recv_timeout(Duration::from_secs(3600)) {
        Ok(Ok(outcome)) => Ok((cache_tag, key, outcome)),
        Ok(Err(e)) => Err(e),
        Err(_) => Err(ProtoError::Internal(
            "timed out waiting for the job".to_string(),
        )),
    }
}

/// The scheduler thread: waits for pending jobs, lingers so a burst
/// coalesces into one batch, then drains and runs the batch. On stop,
/// fails whatever is still queued and exits.
fn scheduler_loop(shared: &Arc<Shared>) {
    loop {
        {
            let mut st = shared.state.lock().expect("state lock");
            while st.pending.is_empty() && !shared.stop.load(Ordering::SeqCst) {
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(200))
                    .expect("state lock");
                st = guard;
            }
            if shared.stop.load(Ordering::SeqCst) {
                let pending = std::mem::take(&mut st.pending);
                for job in pending {
                    st.counters.errors += 1;
                    deliver(
                        &mut st,
                        job.key,
                        Err(ProtoError::Internal("server is shutting down".to_string())),
                    );
                }
                return;
            }
        }
        std::thread::sleep(shared.config.batch_linger);
        let batch = {
            let mut st = shared.state.lock().expect("state lock");
            let batch = std::mem::take(&mut st.pending);
            for job in &batch {
                st.inflight.insert(job.key);
            }
            if !batch.is_empty() {
                st.counters.batches += 1;
            }
            batch
        };
        if !batch.is_empty() {
            run_batch(shared, batch);
        }
    }
}

/// Removes a job's bookkeeping and sends the outcome to every waiter.
fn deliver(st: &mut State, key: u64, outcome: Delivery) {
    st.inflight.remove(&key);
    if let Some(waiters) = st.waiters.remove(&key) {
        for w in waiters {
            let _ = w.send(outcome.clone());
        }
    }
}

/// Groups a batch by compatible configuration and runs each group.
fn run_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    let mut groups: BTreeMap<String, Vec<Job>> = BTreeMap::new();
    for job in batch {
        let spec = &job.spec;
        let compat = format!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            spec.scale,
            spec.mem.tag(),
            spec.addresses.tag(),
            spec.channels,
            spec.tenants,
            spec.plan.tag()
        );
        groups.entry(compat).or_default().push(job);
    }
    for jobs in groups.into_values() {
        run_group(shared, jobs);
    }
}

/// Runs one compatibility group: shards its experiments across worker
/// processes, merges the shard records, and delivers per-job outcomes.
fn run_group(shared: &Arc<Shared>, jobs: Vec<Job>) {
    let group_id = shared.group_seq.fetch_add(1, Ordering::SeqCst);
    let spec0 = jobs[0].spec.clone();
    // Canonical experiment order (ALL_NAMES position) so a group's
    // shard assignment — and therefore its journals and records — is
    // deterministic regardless of submission order. Jobs in one group
    // always carry distinct experiments (identical specs coalesce
    // upstream), but dedup anyway: running a name twice in one worker
    // would write duplicate bench rows.
    let mut names: Vec<String> = jobs.iter().map(|j| j.spec.experiment.clone()).collect();
    names.sort_by_key(|n| exp::ALL_NAMES.iter().position(|a| a == n));
    names.dedup();
    let shard_count = shared.config.shards.clamp(1, names.len());
    let mut shards: Vec<(usize, Vec<String>)> = (0..shard_count).map(|i| (i, Vec::new())).collect();
    for (i, name) in names.iter().enumerate() {
        shards[i % shard_count].1.push(name.clone());
    }
    let results = capstan_par::par_map_threads(&shards, shard_count, |(sidx, shard_names)| {
        run_shard(shared, group_id, *sidx, shard_names, &spec0)
    });

    // Fold the shard records into one group record. gate::merge is the
    // loud merge: duplicate names or conflicting scale metadata across
    // shards fail the whole group rather than shadowing a row.
    let mut merged: Option<BenchRecord> = None;
    let mut reports: BTreeMap<String, String> = BTreeMap::new();
    let mut group_err: Option<String> = None;
    for result in results {
        match result {
            Ok((record, shard_reports)) => {
                merged = Some(match merged.take() {
                    None => record,
                    Some(base) => match gate::merge(&base, &record) {
                        Ok(m) => m,
                        Err(e) => {
                            group_err = Some(format!("shard records conflict: {e}"));
                            break;
                        }
                    },
                });
                reports.extend(shard_reports);
            }
            Err(e) => {
                group_err = Some(e);
                break;
            }
        }
    }

    let mut st = shared.state.lock().expect("state lock");
    match (group_err, merged) {
        (None, Some(record)) => {
            for job in &jobs {
                let row_name = job.spec.row_name();
                let row = record.experiments.iter().find(|r| r.name == row_name);
                let report = reports.get(&job.spec.experiment);
                let outcome = match (row, report) {
                    (Some(row), Some(report)) => Ok(Arc::new(JobOutcome {
                        row: row.clone(),
                        report: report.clone(),
                    })),
                    _ => Err(ProtoError::Internal(format!(
                        "row `{row_name}` missing from the merged shard record"
                    ))),
                };
                match &outcome {
                    Ok(out) => st.cache.insert(job.key, Arc::clone(out)),
                    Err(_) => st.counters.errors += 1,
                }
                deliver(&mut st, job.key, outcome);
            }
        }
        (err, _) => {
            let msg = err.unwrap_or_else(|| "no shard produced a record".to_string());
            for job in &jobs {
                st.counters.errors += 1;
                deliver(&mut st, job.key, Err(ProtoError::WorkerFailed(msg.clone())));
            }
        }
    }
}

/// Runs one shard: spawns the worker process (respawning on failure up
/// to the attempt cap — a worker killed mid-sweep resumes from its
/// journal), then reads back the bench record and the per-experiment
/// reports.
fn run_shard(
    shared: &Arc<Shared>,
    group_id: u64,
    sidx: usize,
    names: &[String],
    spec0: &RunSpec,
) -> Result<(BenchRecord, Vec<(String, String)>), String> {
    let cfg = &shared.config;
    let dir = cfg.work_dir.join(format!("group{group_id}-s{sidx}"));
    let journal_dir = dir.join("journal");
    let bench_path = dir.join("BENCH.json");
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let suffix = spec0.suffix();
    let attempts = cfg.worker_attempts.max(1);
    let mut last_err = String::new();
    for attempt in 0..attempts {
        let mut cmd = std::process::Command::new(&cfg.worker_exe);
        cmd.args(names.iter()).arg("--scale").arg(&spec0.scale);
        if spec0.mem == MemTiming::CycleLevel {
            cmd.args(["--mem", "cycle"]);
        }
        if spec0.addresses == MemAddressing::Recorded {
            cmd.args(["--mem-addresses", "recorded"]);
        }
        if spec0.channels > 1 {
            cmd.arg("--mem-channels").arg(spec0.channels.to_string());
        }
        if spec0.tenants > 1 {
            cmd.arg("--mem-tenants").arg(spec0.tenants.to_string());
        }
        if spec0.plan == PlanMode::Auto {
            // The server already materialized the planned configuration
            // into the flags above; the worker still needs the mode so
            // its rows land in the `+plan` record group.
            cmd.args(["--plan", "auto"]);
        }
        cmd.arg("--resume")
            .arg(&journal_dir)
            .arg("--bench-out")
            .arg(&bench_path)
            .stdin(std::process::Stdio::null())
            // The worker's stdout replays journaled reports — the
            // server reads them from the journal instead, so the
            // stream is discarded.
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped());
        // Workers inherit the server's environment (CAPSTAN_THREADS
        // etc.) except the fault knob, which must only ever arm the one
        // spawn the test asked for.
        cmd.env_remove("CAPSTAN_FAULT_AFTER_CYCLES");
        cmd.env("CAPSTAN_CHECKPOINT_DIR", dir.join("ckpt"));
        if attempt == 0 && cfg.fault_first_worker.is_some() {
            if let Some(n) = cfg.fault_first_worker {
                if shared.fault_armed.swap(false, Ordering::SeqCst) {
                    cmd.env("CAPSTAN_FAULT_AFTER_CYCLES", n.to_string());
                    cmd.env("CAPSTAN_CHECKPOINT_EVERY_CYCLES", "4096");
                }
            }
        }
        for (k, v) in &cfg.worker_env {
            cmd.env(k, v);
        }
        shared
            .state
            .lock()
            .expect("state lock")
            .counters
            .worker_spawns += 1;
        let out = cmd
            .output()
            .map_err(|e| format!("cannot spawn {}: {e}", cfg.worker_exe.display()))?;
        if out.status.success() {
            let text = std::fs::read_to_string(&bench_path)
                .map_err(|e| format!("worker wrote no record at {}: {e}", bench_path.display()))?;
            let record = gate::parse_record(&text)
                .map_err(|e| format!("worker wrote a malformed record: {e}"))?;
            let journal = Journal::open_or_create(&journal_dir, &spec0.scale, &suffix)?;
            let mut shard_reports = Vec::new();
            for name in names {
                shard_reports.push((name.clone(), journal.report_text(name)?));
            }
            return Ok((record, shard_reports));
        }
        let stderr = String::from_utf8_lossy(&out.stderr);
        let tail: String = stderr
            .lines()
            .rev()
            .take(3)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect::<Vec<_>>()
            .join("; ");
        last_err = format!("worker exited with {} ({tail})", out.status);
        if attempt + 1 < attempts {
            // Rows already journaled before the crash will replay, not
            // re-run, on the respawn — that is the resumed work.
            let resumed = std::fs::read_to_string(journal_dir.join("journal"))
                .map(|t| t.lines().count().saturating_sub(1) as u64)
                .unwrap_or(0);
            let mut st = shared.state.lock().expect("state lock");
            st.counters.worker_retries += 1;
            st.counters.rows_resumed += resumed;
        }
    }
    Err(last_err)
}
