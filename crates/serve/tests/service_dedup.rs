//! Deduplication: N concurrent identical submissions run exactly one
//! simulation, proven from the server's own cache accounting — plus
//! property tests pinning the cache key's canonicalization invariants.

mod common;

use capstan_serve::client;
use capstan_serve::key::RunSpec;
use capstan_serve::server::{Server, ServerConfig};
use proptest::prelude::*;
use std::path::PathBuf;

fn counters(addr: &str) -> std::collections::HashMap<String, u64> {
    client::stats(addr).expect("stats").into_iter().collect()
}

#[test]
fn concurrent_identical_submissions_simulate_once() {
    const N: usize = 8;
    let workdir = common::tmpdir("dedup");
    let config = ServerConfig::new(PathBuf::from(common::bin()), workdir.clone());
    let handle = Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = handle.addr.to_string();

    let mut spec = RunSpec::new("fig4");
    spec.scale = "small".to_string();
    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let addr = &addr;
                let spec = &spec;
                scope.spawn(move || client::submit(addr, spec, None).expect("submit"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // All N responses byte-identical.
    for reply in &replies[1..] {
        assert_eq!(reply.report, replies[0].report, "responses diverged");
        assert_eq!(reply.row, replies[0].row, "bench rows diverged");
        assert_eq!(reply.key, replies[0].key, "cache keys diverged");
    }
    assert_eq!(replies[0].row.name, "fig4");
    assert!(!replies[0].report.is_empty());

    // Exactly one simulation, by the server's own accounting: one miss
    // reached a core, one worker was spawned, and the other N-1
    // requests either coalesced onto the in-flight job or hit the
    // completed cache (the split depends on arrival timing).
    let stats = counters(&addr);
    assert_eq!(stats["submits"], N as u64);
    assert_eq!(
        stats["misses"], 1,
        "more than one simulation ran: {stats:?}"
    );
    assert_eq!(stats["worker_spawns"], 1, "{stats:?}");
    assert_eq!(
        stats["cache_hits"] + stats["coalesced"],
        (N - 1) as u64,
        "{stats:?}"
    );
    assert_eq!(stats["batches"], 1, "{stats:?}");
    assert_eq!(stats["errors"], 0, "{stats:?}");

    // A late duplicate is a pure cache hit.
    let late = client::submit(&addr, &spec, None).expect("late submit");
    assert_eq!(late.cache, "hit");
    assert_eq!(late.report, replies[0].report);
    let stats = counters(&addr);
    assert_eq!(stats["misses"], 1);
    assert_eq!(stats["worker_spawns"], 1);

    client::shutdown(&addr).expect("shutdown");
    handle.join().expect("server exit");
    let _ = std::fs::remove_dir_all(&workdir);
}

/// Canonical key with the given custom-scale factor spellings.
fn key_for(
    experiment: &str,
    la: &str,
    graph: &str,
    spmspm: &str,
    conv: &str,
    channels: usize,
) -> u64 {
    let mut spec = RunSpec::new(experiment);
    spec.scale = format!("la={la},graph={graph},spmspm={spmspm},conv={conv}");
    spec.channels = channels;
    spec.cache_key().expect("valid spec keys")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The key hashes parsed values, not spellings: scientific
    /// notation, trailing zeros, and field order (exercised at the
    /// protocol layer; `RunSpec` holds parsed fields) all map to the
    /// same key.
    #[test]
    fn cache_key_is_invariant_under_factor_spelling(
        (la, graph, spmspm, conv) in (1e-3..1.0f64, 1e-3..1.0f64, 1e-3..1.0f64, 1e-3..1.0f64),
    ) {
        let plain = key_for(
            "fig7",
            &format!("{la}"),
            &format!("{graph}"),
            &format!("{spmspm}"),
            &format!("{conv}"),
            1,
        );
        let scientific = key_for(
            "fig7",
            &format!("{la:e}"),
            &format!("{graph:e}"),
            &format!("{spmspm:e}"),
            &format!("{conv:e}"),
            1,
        );
        prop_assert_eq!(plain, scientific, "spelling moved the key");
    }

    /// Any single-field change moves the key: a different factor, a
    /// different experiment, a different channel count.
    #[test]
    fn cache_key_separates_any_single_field_change(
        (la, graph, spmspm, conv) in (1e-3..1.0f64, 1e-3..1.0f64, 1e-3..1.0f64, 1e-3..1.0f64),
    ) {
        let la_s = format!("{la}");
        let graph_s = format!("{graph}");
        let spmspm_s = format!("{spmspm}");
        let conv_s = format!("{conv}");
        let base = key_for("fig7", &la_s, &graph_s, &spmspm_s, &conv_s, 1);
        // Perturb one scale factor (stays within Suite::parse's bounds).
        let bumped = format!("{}", la * 1.5 + 1e-6);
        prop_assert_ne!(
            base,
            key_for("fig7", &bumped, &graph_s, &spmspm_s, &conv_s, 1),
            "a changed factor kept the key"
        );
        prop_assert_ne!(
            base,
            key_for("fig4", &la_s, &graph_s, &spmspm_s, &conv_s, 1),
            "a changed experiment kept the key"
        );
        prop_assert_ne!(
            base,
            key_for("fig7", &la_s, &graph_s, &spmspm_s, &conv_s, 4),
            "a changed channel count kept the key"
        );
    }
}
