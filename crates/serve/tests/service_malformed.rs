//! Hostile-client hardening: truncated frames, oversized payloads,
//! unknown experiments, non-finite config floats, binary garbage, and
//! stalled sockets all get typed protocol errors — and the server keeps
//! serving afterwards. Never a panic, never a hung handler.

mod common;

use capstan_serve::client;
use capstan_serve::key::RunSpec;
use capstan_serve::server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// Sends raw bytes as one connection's request and returns the raw
/// reply (optionally half-closing the write side to simulate a client
/// that hung up mid-frame).
fn raw_exchange(addr: &str, payload: &[u8], close_write: bool) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.write_all(payload).expect("send");
    if close_write {
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
    }
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    reply
}

#[test]
fn malformed_requests_get_typed_errors_and_the_server_survives() {
    let workdir = common::tmpdir("malformed");
    let mut config = ServerConfig::new(PathBuf::from(common::bin()), workdir.clone());
    // Short socket timeout so the stalled-client case resolves quickly.
    config.read_timeout = Duration::from_millis(300);
    let handle = Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = handle.addr.to_string();

    // (payload, close_write, expected error code)
    let cases: &[(&[u8], bool, &str)] = &[
        // Not the protocol at all.
        (b"GET / HTTP/1.1\r\n", false, "ERR bad-frame"),
        // Binary garbage (not UTF-8).
        (&[0xff, 0xfe, 0x00, b'\n'], false, "ERR bad-frame"),
        // Right magic, unknown verb.
        (b"capstan-serve/v1 FROBNICATE\n", false, "ERR bad-frame"),
        // Unknown experiment.
        (
            b"capstan-serve/v1 SUBMIT experiment=fig99\n",
            false,
            "ERR unknown-experiment",
        ),
        // Non-finite config floats.
        (
            b"capstan-serve/v1 SUBMIT experiment=fig7 scale=la=NaN,graph=0.1,spmspm=0.1,conv=0.1\n",
            false,
            "ERR bad-request",
        ),
        (
            b"capstan-serve/v1 SUBMIT experiment=fig7 scale=la=inf,graph=0.1,spmspm=0.1,conv=0.1\n",
            false,
            "ERR bad-request",
        ),
        // Truncated frame: the peer hangs up mid-line.
        (b"capstan-serve/v1 SUB", true, "ERR truncated"),
        // Missing required field.
        (b"capstan-serve/v1 SUBMIT\n", false, "ERR bad-request"),
    ];
    for (payload, close_write, want) in cases {
        let reply = raw_exchange(&addr, payload, *close_write);
        assert!(
            reply.contains(want),
            "payload {:?}: expected {want}, got {reply:?}",
            String::from_utf8_lossy(payload)
        );
        assert!(
            reply.starts_with("capstan-serve/v1 "),
            "untagged reply: {reply:?}"
        );
    }

    // Oversized frame: a newline-less flood is cut off at the frame cap
    // (well before it could exhaust memory).
    let flood = vec![b'a'; 8 * 1024];
    let reply = raw_exchange(&addr, &flood, false);
    assert!(reply.contains("ERR oversized"), "got {reply:?}");

    // Stalled client: connect, send nothing, wait — the read timeout
    // answers, the handler thread is not wedged forever.
    let reply = raw_exchange(&addr, b"", true);
    assert!(reply.contains("ERR truncated"), "got {reply:?}");
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    assert!(reply.contains("ERR timeout"), "got {reply:?}");

    // The typed client maps relayed errors back to typed values.
    let mut bad = RunSpec::new("fig7");
    bad.scale = "small".to_string();
    bad.experiment = "not-an-experiment".to_string();
    let err = client::submit(&addr, &bad, None).expect_err("unknown experiment");
    assert_eq!(err.code(), "unknown-experiment");

    // After all of the abuse, the server still serves: liveness probe
    // plus a real (instant at small scale) submission.
    client::ping(&addr).expect("server still answers pings");
    let mut spec = RunSpec::new("table5");
    spec.scale = "small".to_string();
    let reply = client::submit(&addr, &spec, None).expect("server still simulates");
    assert!(!reply.report.is_empty());

    client::shutdown(&addr).expect("shutdown");
    handle.join().expect("server exit");
    let _ = std::fs::remove_dir_all(&workdir);
}
