//! Fault injection: a worker killed mid-sweep (the simulator's
//! `CAPSTAN_FAULT_AFTER_CYCLES` exit-43 knob, armed for exactly one
//! spawn by the server's test hook) is respawned and *resumes* from its
//! journal — and the batch's merged results are byte-identical to an
//! uninterrupted run.

mod common;

use capstan_core::config::MemTiming;
use capstan_serve::client;
use capstan_serve::key::RunSpec;
use capstan_serve::server::{Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

/// The two cycle-mode experiments submitted as one batch. At `small`
/// scale the first simulates ~73k cycles and the second ~163k more, so
/// a fault threshold of 100k lets the worker journal the first row and
/// die partway through the second — the respawn must replay row one
/// and only recompute row two.
const NAMES: [&str; 2] = ["table13-atomics", "table13-recorded"];
const FAULT_AFTER_CYCLES: u64 = 100_000;

fn spec_for(name: &str) -> RunSpec {
    let mut spec = RunSpec::new(name);
    spec.scale = "small".to_string();
    spec.mem = MemTiming::CycleLevel;
    spec
}

#[test]
fn killed_worker_resumes_and_results_match_an_uninterrupted_run() {
    let workdir = common::tmpdir("fault");
    let mut config = ServerConfig::new(PathBuf::from(common::bin()), workdir.clone());
    config.fault_first_worker = Some(FAULT_AFTER_CYCLES);
    // A longer linger makes the two submissions land in one batch (and
    // therefore one worker) deterministically.
    config.batch_linger = Duration::from_millis(500);
    let handle = Server::bind("127.0.0.1:0", config)
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = handle.addr.to_string();

    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = NAMES
            .iter()
            .map(|name| {
                let addr = &addr;
                scope.spawn(move || client::submit(addr, &spec_for(name), None).expect("submit"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // The server really did lose a worker and resume it.
    let stats: std::collections::HashMap<String, u64> =
        client::stats(&addr).expect("stats").into_iter().collect();
    assert_eq!(
        stats["batches"], 1,
        "submissions split across batches: {stats:?}"
    );
    assert_eq!(stats["worker_spawns"], 2, "no respawn happened: {stats:?}");
    assert_eq!(stats["worker_retries"], 1, "{stats:?}");
    assert!(
        stats["rows_resumed"] >= 1,
        "the respawn replayed no journaled rows: {stats:?}"
    );
    assert_eq!(stats["errors"], 0, "{stats:?}");

    client::shutdown(&addr).expect("shutdown");
    handle.join().expect("server exit");

    // Byte-identity against an uninterrupted run: the direct invocation
    // of the same batch prints the same reports in the same order, and
    // the simulated-cycle counts (the machine-independent outputs; wall
    // time is timing, not content) agree row for row.
    let mut direct_args: Vec<&str> = NAMES.to_vec();
    direct_args.extend(["--scale", "small", "--mem", "cycle"]);
    let direct = common::run_ok(&direct_args, &[]);
    let served: Vec<u8> = replies
        .iter()
        .flat_map(|r| r.report.as_bytes().iter().copied())
        .collect();
    assert_eq!(
        served, direct,
        "resumed batch reports diverged from the uninterrupted run"
    );
    assert_eq!(replies[0].row.name, "table13-atomics+cycle");
    assert_eq!(replies[1].row.name, "table13-recorded+cycle");
    for reply in &replies {
        assert!(
            reply.row.simulated_cycles > 0,
            "{}: no cycles simulated",
            reply.row.name
        );
    }

    // Sanity on the fault geometry: the first experiment alone stays
    // under the threshold (so the armed worker survives long enough to
    // journal it) and the pair crosses it (so the worker does die).
    let total: u64 = replies.iter().map(|r| r.row.simulated_cycles).sum();
    assert!(replies[0].row.simulated_cycles < FAULT_AFTER_CYCLES);
    assert!(total > FAULT_AFTER_CYCLES);

    let _ = std::fs::remove_dir_all(&workdir);
}
