//! Black-box conformance: a served run's output is byte-identical to a
//! direct `experiments` invocation — across worker thread counts and
//! across the analytic/cycle memory modes. Both sides run as
//! subprocesses with an explicit environment; the test process itself
//! never simulates (process-default config is set-once) and never
//! mutates its own env.

mod common;

use common::{run_ok, ServerProc};

/// One conformance scenario: experiment names plus the memory-mode
/// flags that describe the request on both sides.
struct Scenario {
    tag: &'static str,
    names: &'static [&'static str],
    mode_flags: &'static [&'static str],
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        tag: "analytic",
        names: &["table5", "fig4"],
        mode_flags: &[],
    },
    Scenario {
        tag: "cycle",
        names: &["table13-atomics"],
        mode_flags: &["--mem", "cycle"],
    },
];

#[test]
fn served_output_is_byte_identical_to_direct_runs() {
    for scenario in SCENARIOS {
        // The reference bytes: a plain direct invocation at one thread.
        let mut direct_args: Vec<&str> = scenario.names.to_vec();
        direct_args.extend(["--scale", "small"]);
        direct_args.extend(scenario.mode_flags);
        let direct = run_ok(&direct_args, &[("CAPSTAN_THREADS", "1")]);
        assert!(
            !direct.is_empty(),
            "{}: direct run printed nothing",
            scenario.tag
        );

        for threads in ["1", "2", "4"] {
            let server = ServerProc::start(
                &format!("equiv-{}-t{threads}", scenario.tag),
                &[("CAPSTAN_THREADS", threads)],
            );
            let mut submit_args: Vec<&str> = scenario.names.to_vec();
            submit_args.extend(["--submit", &server.addr, "--scale", "small"]);
            submit_args.extend(scenario.mode_flags);

            // First submission simulates; the repeat must come from the
            // cache — and both must match the direct bytes exactly.
            let served = run_ok(&submit_args, &[("CAPSTAN_THREADS", threads)]);
            assert_eq!(
                served, direct,
                "{} at {threads} threads: served output diverged from the direct run",
                scenario.tag
            );
            let repeat = run_ok(&submit_args, &[("CAPSTAN_THREADS", threads)]);
            assert_eq!(
                repeat, direct,
                "{} at {threads} threads: cached replay diverged",
                scenario.tag
            );
            server.shutdown();
        }
    }
}
