//! Shared harness for the black-box service tests: locating the
//! `experiments` binary, running it as a subprocess with a controlled
//! environment (the tests never mutate the test process's own env —
//! process-default config is set-once and shared across test threads),
//! and driving a server subprocess through its readiness line.

#![allow(dead_code)] // each test file uses a different helper subset

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// The `experiments` binary under test (built by cargo for this
/// package).
pub fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_experiments")
}

/// A fresh scratch directory under the target-adjacent temp dir.
pub fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("capstan-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs the binary with `args` and `envs`, asserting success, and
/// returns its exact stdout bytes.
pub fn run_ok(args: &[&str], envs: &[(&str, &str)]) -> Vec<u8> {
    let mut cmd = Command::new(bin());
    cmd.args(args).stdin(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("run experiments");
    assert!(
        out.status.success(),
        "experiments {args:?} failed ({}): {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// A server subprocess, killed on drop. `envs` apply to the server and
/// are inherited by its workers.
pub struct ServerProc {
    child: Option<Child>,
    /// The bound address parsed from the readiness line.
    pub addr: String,
    workdir: PathBuf,
}

impl ServerProc {
    /// Starts `experiments --serve 127.0.0.1:0` and waits for the
    /// readiness line on stdout.
    pub fn start(tag: &str, envs: &[(&str, &str)]) -> ServerProc {
        use std::io::BufRead;
        let workdir = tmpdir(tag);
        let mut cmd = Command::new(bin());
        cmd.args([
            "--serve",
            "127.0.0.1:0",
            "--serve-workdir",
            workdir.to_str().expect("utf-8 path"),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn server");
        let stdout = child.stdout.take().expect("server stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("server readiness line");
        let addr = line
            .trim()
            .strip_prefix("capstan-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected readiness line: {line:?}"))
            .to_string();
        ServerProc {
            child: Some(child),
            addr,
            workdir,
        }
    }

    /// Asks the server to shut down and waits for a clean exit.
    pub fn shutdown(mut self) {
        let status = Command::new(bin())
            .args(["--serve-shutdown", &self.addr])
            .status()
            .expect("run serve-shutdown");
        assert!(status.success(), "serve-shutdown failed: {status}");
        let status = self
            .child
            .take()
            .expect("server child")
            .wait()
            .expect("server exit");
        assert!(status.success(), "server exited with {status}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_dir_all(&self.workdir);
    }
}
