//! Sparse matrix-vector multiplication in three formats (paper Table 2).
//!
//! The three variants stress different Capstan mechanisms:
//!
//! * **CSR** — dense row iteration, random `V[c]` *reads*: structural
//!   hazards on the SpMU's read path (the paper's 17× Plasticine factor).
//! * **COO** — iteration over non-zeros with both a random read (`V[c]`)
//!   and a random atomic update (`Out[r] +=`): data hazards on memory
//!   modification (the 184× factor).
//! * **CSC** — sparse iteration over the non-zero *inputs* (a 30%-dense
//!   vector, §4), skipping whole columns, with atomic `Out[r]` updates.

use crate::common::{dense_vector, round_robin};
use crate::App;
use capstan_core::config::CapstanConfig;
use capstan_core::program::{Workload, WorkloadBuilder};
use capstan_tensor::bcsr::Bcsr;
use capstan_tensor::bitvec::BitVec;
use capstan_tensor::convert::SparseVec;
use capstan_tensor::dcsr::Dcsr;
use capstan_tensor::{Coo, Csc, Csr, Value};

use capstan_arch::scanner::ScanMode;
use capstan_arch::spmu::RmwOp;

/// CSR SpMV: `y[r] = Σ_c M[r][c] * V[c]` with dense row iteration.
#[derive(Debug, Clone)]
pub struct CsrSpmv {
    matrix: Csr,
    x: Vec<Value>,
}

impl CsrSpmv {
    /// Creates the benchmark with a deterministic dense input vector.
    pub fn new(matrix: &Coo) -> Self {
        CsrSpmv {
            matrix: Csr::from_coo(matrix),
            x: dense_vector(matrix.cols()),
        }
    }

    /// Creates the benchmark with a caller-provided input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != matrix.cols()`.
    pub fn with_vector(matrix: &Coo, x: Vec<Value>) -> Self {
        assert_eq!(x.len(), matrix.cols(), "input vector length mismatch");
        CsrSpmv {
            matrix: Csr::from_coo(matrix),
            x,
        }
    }

    /// CPU reference result.
    pub fn reference(&self) -> Vec<Value> {
        self.matrix.spmv(&self.x)
    }

    /// Records the Capstan execution: returns the workload trace and the
    /// functionally computed result.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, Vec<Value>) {
        let tiles = cfg.effective_outer_par(1);
        let rows = self.matrix.rows();
        let cols_n = self.matrix.cols();
        // V is SRAM-resident: replicated per SpMU when it fits (the
        // common case), otherwise partitioned into contiguous column
        // ranges with cross-tile reads through the shuffle network.
        let v_fits = cols_n <= cfg.spmu.capacity_words();
        let range = cols_n.div_ceil(tiles).max(1);
        let mut wl = WorkloadBuilder::for_config("CSR SpMV", cfg);
        let mut y = vec![0.0; rows];
        for tile in 0..tiles {
            let mut t = wl.tile();
            // The vector streams from DRAM once (multicast on chip), so
            // each tile accounts a 1/tiles share; the tile's rows, column
            // indices, and values stream in full.
            t.dram_stream_read(self.x.len() * 4 / tiles);
            let mut tile_rows = 0usize;
            let mut tile_nnz = 0usize;
            for r in round_robin(rows, tiles, tile) {
                tile_rows += 1;
                let cols = self.matrix.row_cols(r);
                let vals = self.matrix.row_values(r);
                tile_nnz += cols.len();
                let mut acc = 0.0;
                t.foreach_vec(cols.len(), |t, k| {
                    let c = cols[k];
                    t.sram_read(c); // random V[c] read
                    if !v_fits {
                        let owner = (c as usize) / range;
                        if owner != tile {
                            t.remote_update_at(owner, c as u64);
                        }
                    }
                    acc += vals[k] * self.x[c as usize];
                });
                y[r] = acc;
            }
            t.dram_stream_read(tile_rows * 4 + tile_nnz * 8);
            t.dram_stream_write(tile_rows * 4);
            wl.commit(t);
        }
        (wl.finish(), y)
    }
}

impl App for CsrSpmv {
    fn name(&self) -> &'static str {
        "CSR SpMV"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

/// COO SpMV: iterate non-zeros, read `V[c]`, atomically add into `Out[r]`.
#[derive(Debug, Clone)]
pub struct CooSpmv {
    matrix: Coo,
    x: Vec<Value>,
}

impl CooSpmv {
    /// Creates the benchmark with a deterministic dense input vector.
    pub fn new(matrix: &Coo) -> Self {
        CooSpmv {
            matrix: matrix.clone(),
            x: dense_vector(matrix.cols()),
        }
    }

    /// CPU reference result.
    pub fn reference(&self) -> Vec<Value> {
        let mut y = vec![0.0; self.matrix.rows()];
        for (r, c, v) in self.matrix.iter() {
            y[r as usize] += v * self.x[c as usize];
        }
        y
    }

    /// Records the Capstan execution.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, Vec<Value>) {
        let tiles = cfg.effective_outer_par(1);
        let entries = self.matrix.entries();
        let mut wl = WorkloadBuilder::for_config("COO SpMV", cfg);
        let mut y = vec![0.0; self.matrix.rows()];
        // Round-robin division of non-zero values (paper §4).
        let chunk = entries.len().div_ceil(tiles.max(1));
        for tile in 0..tiles {
            let lo = (tile * chunk).min(entries.len());
            let hi = ((tile + 1) * chunk).min(entries.len());
            let slice = &entries[lo..hi];
            let mut t = wl.tile();
            // V is SRAM-resident; its DRAM stream is shared across tiles.
            t.dram_stream_read(self.x.len() * 4 / tiles);
            // Row and column pointers are compressible (closely spaced in
            // a sorted COO, §3.4 / Fig. 5c), values are not.
            let row_ptrs: Vec<u32> = slice.iter().map(|e| e.0).collect();
            let col_ptrs: Vec<u32> = slice.iter().map(|e| e.1).collect();
            t.dram_pointer_read(&row_ptrs);
            t.dram_pointer_read(&col_ptrs);
            t.dram_stream_read(slice.len() * 4);
            t.foreach_vec(slice.len(), |t, k| {
                let (r, c, v) = slice[k];
                t.sram_read(c); // V[c]
                                // Sorted COO puts equal rows in runs: the CU's reduce
                                // stage pre-sums a run within the vector, so only the
                                // last lane of a run issues the atomic update.
                let last_of_run = k + 1 == slice.len() || slice[k + 1].0 != r || (k + 1) % 16 == 0;
                if last_of_run {
                    t.sram_rmw(r, RmwOp::AddF); // Out[r] +=
                }
                y[r as usize] += v * self.x[c as usize];
            });
            t.dram_stream_write((hi - lo).min(self.matrix.rows()) * 4);
            wl.commit(t);
        }
        (wl.finish(), y)
    }
}

impl App for CooSpmv {
    fn name(&self) -> &'static str {
        "COO SpMV"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

/// CSC SpMV: scan the sparse input vector, skip zero columns entirely,
/// scatter `Out[r] += M[c][r] * V[c]` with atomic updates.
#[derive(Debug, Clone)]
pub struct CscSpmv {
    matrix: Csc,
    x: SparseVec,
}

impl CscSpmv {
    /// Input-vector density used by the paper (§4: "we use a 30%-dense
    /// input vector, based on the datasets used to test EIE").
    pub const INPUT_DENSITY: f64 = 0.30;

    /// Creates the benchmark with the paper's 30%-dense input vector.
    pub fn new(matrix: &Coo) -> Self {
        let dense = capstan_tensor::gen::sparse_vector(matrix.cols(), Self::INPUT_DENSITY, 0xC5C);
        CscSpmv {
            matrix: Csc::from_coo(matrix),
            x: SparseVec::from_dense(&dense),
        }
    }

    /// Creates the benchmark with a caller-provided input.
    pub fn with_vector(matrix: &Coo, x: &[Value]) -> Self {
        assert_eq!(x.len(), matrix.cols(), "input vector length mismatch");
        CscSpmv {
            matrix: Csc::from_coo(matrix),
            x: SparseVec::from_dense(x),
        }
    }

    /// CPU reference result.
    pub fn reference(&self) -> Vec<Value> {
        self.matrix.spmv(&self.x.to_dense())
    }

    /// Records the Capstan execution.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, Vec<Value>) {
        let tiles = cfg.effective_outer_par(1);
        let cols = self.matrix.cols();
        let mut wl = WorkloadBuilder::for_config("CSC SpMV", cfg);
        let mut y = vec![0.0; self.matrix.rows()];
        let x_dense = self.x.to_dense();
        for tile in 0..tiles {
            let mut t = wl.tile();
            // This tile's slice of the dense-format input vector, in
            // round-robin column order. The outer loop is `sparse(V)`
            // over a *dense* operand (Table 2), so the hardware uses the
            // data scanner — which is why CSC appears in the paper's
            // data-scanner sensitivity study (Fig. 6b).
            let tile_cols: Vec<usize> = round_robin(cols, tiles, tile).collect();
            let tile_vals: Vec<Value> = tile_cols.iter().map(|&c| x_dense[c]).collect();
            // Input vector stream, shared across tiles.
            t.dram_stream_read(x_dense.len() * 4 / tiles);
            // Touched matrix columns are scattered in DRAM: burst-granular
            // random fetches ("significant on-chip processing interspersed
            // with DRAM loads of matrix data", paper §4.4). Each burst is
            // recorded at its real word offset in the column-major matrix
            // layout (8 bytes per stored entry), so the cycle-level
            // memory mode's recorded-address replay sees the true
            // scatter pattern.
            let col_ptr = self.matrix.col_ptr();
            for &c in &tile_cols {
                if x_dense[c] != 0.0 {
                    let start_word = col_ptr[c] as u64 * 2;
                    let bursts = (self.matrix.col_len(c) as u64 * 8).div_ceil(64);
                    for b in 0..bursts {
                        t.dram_random_read_at(start_word + b * 16);
                    }
                }
            }
            t.scan_data_outer(&tile_vals, |t, k, xc| {
                let c = tile_cols[k as usize];
                let rows = self.matrix.col_rows(c);
                let vals = self.matrix.col_values(c);
                t.foreach_vec(rows.len(), |t, i| {
                    t.sram_rmw(rows[i], RmwOp::AddF); // Out[r] +=
                    y[rows[i] as usize] += vals[i] * xc;
                });
            });
            t.dram_stream_write(self.matrix.rows().div_ceil(tiles) * 4);
            wl.commit(t);
        }
        (wl.finish(), y)
    }
}

impl App for CscSpmv {
    fn name(&self) -> &'static str {
        "CSC SpMV"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

/// BCSR SpMV: dense `block × block` regions instead of individual
/// non-zeros (paper §2.1: "Other formats — especially for vector
/// architectures — use block sparsity").
///
/// The block format trades work for regularity: every stored value is
/// processed (including explicit zeros, so lane work is `nnz /
/// fill_ratio`), but the inner loop is perfectly vectorizable — no
/// scanner, full lanes, and the `x` reads of one block are consecutive
/// addresses that the hashed banking (§3.1) spreads conflict-free. The
/// CSR-vs-BCSR crossover as a function of fill ratio is measured by the
/// experiment harness's format study.
///
/// # Example
///
/// ```
/// use capstan_apps::spmv::BcsrSpmv;
/// use capstan_apps::App;
/// use capstan_core::config::CapstanConfig;
/// use capstan_tensor::gen;
///
/// let app = BcsrSpmv::new(&gen::banded(256, 15_000, 5), 16);
/// assert!(app.matrix().fill_ratio() > 0.3); // banded structure blocks well
/// let report = app.simulate(&CapstanConfig::paper_default());
/// assert!(report.cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct BcsrSpmv {
    matrix: Bcsr,
    x: Vec<Value>,
}

impl BcsrSpmv {
    /// Creates the benchmark with the given block size and a
    /// deterministic dense input vector.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    pub fn new(matrix: &Coo, block: usize) -> Self {
        BcsrSpmv {
            matrix: Bcsr::from_coo(matrix, block),
            x: dense_vector(matrix.cols()),
        }
    }

    /// The blocked matrix (exposes fill-ratio accounting).
    pub fn matrix(&self) -> &Bcsr {
        &self.matrix
    }

    /// CPU reference result.
    pub fn reference(&self) -> Vec<Value> {
        self.matrix.spmv(&self.x)
    }

    /// Records the Capstan execution.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, Vec<Value>) {
        let tiles = cfg.effective_outer_par(1);
        let b = self.matrix.block_size();
        let mut wl = WorkloadBuilder::for_config("BCSR SpMV", cfg);
        let mut y = vec![0.0; self.matrix.rows()];
        for tile in 0..tiles {
            let mut t = wl.tile();
            // The input vector is SRAM-resident; its stream is shared.
            t.dram_stream_read(self.x.len() * 4 / tiles);
            let mut tile_block_rows = 0usize;
            let mut tile_blocks = 0usize;
            let mut block_ptrs: Vec<u32> = Vec::new();
            for br in round_robin(self.matrix.block_rows(), tiles, tile) {
                tile_block_rows += 1;
                for (bc, payload) in self.matrix.block_row(br) {
                    tile_blocks += 1;
                    block_ptrs.push(bc);
                    let col_base = bc as usize * b;
                    // One contiguous vector read of x[col_base..+b] per
                    // block, reused across the block's rows.
                    t.foreach_vec(b, |t, ci| {
                        if col_base + ci < self.x.len() {
                            t.sram_read((col_base + ci) as u32);
                        }
                    });
                    // b x b dense MACs, fully vectorized, no scanner.
                    t.foreach_vec(b * b, |_, i| {
                        let (ri, ci) = (i / b, i % b);
                        let r = br * b + ri;
                        let c = col_base + ci;
                        if r < y.len() && c < self.x.len() {
                            y[r] += payload[ri * b + ci] * self.x[c];
                        }
                    });
                }
            }
            // Block pointers are compressible; payloads stream in full
            // (explicit zeros included — the storage cost of blocking).
            t.dram_pointer_read(&block_ptrs);
            t.dram_stream_read(tile_block_rows * 4 + tile_blocks * b * b * 4);
            t.dram_stream_write(tile_block_rows * b * 4);
            wl.commit(t);
        }
        (wl.finish(), y)
    }
}

impl App for BcsrSpmv {
    fn name(&self) -> &'static str {
        "BCSR SpMV"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

/// DCSR SpMV: sparse iteration over the *row* dimension (paper §2.1: "If
/// iteration along rows were sparse, the matrix — with the same row
/// format — would be a doubly-compressed sparse row (DCSR) matrix").
///
/// The scanner iterates the row-occupancy bit-vector, so empty rows cost
/// neither loop iterations nor pointer traffic — the win on hyper-sparse
/// matrices where CSR streams `rows + 1` pointers regardless of content.
/// [`capstan_tensor::dcsr::prefers_dcsr`] makes the per-dimension format
/// choice a compiler like TACO would.
///
/// # Example
///
/// ```
/// use capstan_apps::spmv::DcsrSpmv;
/// use capstan_apps::App;
/// use capstan_core::config::CapstanConfig;
/// use capstan_tensor::gen;
///
/// // 4096 rows, only ~60 occupied: DCSR skips the rest.
/// let m = gen::uniform(4096, 4096, 90, 11);
/// assert!(capstan_tensor::dcsr::prefers_dcsr(&m));
/// let app = DcsrSpmv::new(&m);
/// let report = app.simulate(&CapstanConfig::paper_default());
/// assert!(report.cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DcsrSpmv {
    matrix: Dcsr,
    x: Vec<Value>,
}

impl DcsrSpmv {
    /// Creates the benchmark with a deterministic dense input vector.
    pub fn new(matrix: &Coo) -> Self {
        DcsrSpmv {
            matrix: Dcsr::from_coo(matrix),
            x: dense_vector(matrix.cols()),
        }
    }

    /// The doubly-compressed matrix (exposes occupancy accounting).
    pub fn matrix(&self) -> &Dcsr {
        &self.matrix
    }

    /// CPU reference result.
    pub fn reference(&self) -> Vec<Value> {
        self.matrix.spmv(&self.x)
    }

    /// Records the Capstan execution.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, Vec<Value>) {
        let tiles = cfg.effective_outer_par(1);
        let mut wl = WorkloadBuilder::for_config("DCSR SpMV", cfg);
        let mut y = vec![0.0; self.matrix.rows()];
        // Round-robin the *occupied* rows (round-robin division of rows,
        // paper §4 — empty rows don't exist in this format).
        let occupied = self.matrix.occupied_rows();
        for tile in 0..tiles {
            let mut t = wl.tile();
            t.dram_stream_read(self.x.len() * 4 / tiles);
            let tile_ks: Vec<usize> = round_robin(occupied, tiles, tile).collect();
            // The tile's slice of the occupancy bit-vector drives the
            // sparse outer loop through the bit-vector scanner.
            let row_ids: Vec<u32> = tile_ks.iter().map(|&k| self.matrix.row_ids()[k]).collect();
            let tile_bv =
                BitVec::from_indices(self.matrix.rows(), &row_ids).expect("row ids in bounds");
            let mut tile_nnz = 0usize;
            let mut slot = 0usize;
            t.scan_outer(ScanMode::Intersect, &tile_bv, None, |t, e| {
                let k = tile_ks[slot];
                debug_assert_eq!(e.j, self.matrix.row_ids()[k]);
                slot += 1;
                let entries: Vec<(u32, Value)> = self.matrix.occupied_row(k).collect();
                tile_nnz += entries.len();
                let mut acc = 0.0;
                t.foreach_vec(entries.len(), |t, i| {
                    let (c, v) = entries[i];
                    t.sram_read(c); // random V[c] read
                    acc += v * self.x[c as usize];
                });
                y[e.j as usize] = acc;
            });
            // DCSR pointer traffic: row ids (compressible — sorted and
            // closely spaced) + per-row lengths + column/value streams.
            t.dram_pointer_read(&row_ids);
            t.dram_stream_read(tile_ks.len() * 4 + tile_nnz * 8);
            // Output is also compressed: (row id, value) pairs.
            t.dram_stream_write(tile_ks.len() * 8);
            wl.commit(t);
        }
        (wl.finish(), y)
    }
}

impl App for DcsrSpmv {
    fn name(&self) -> &'static str {
        "DCSR SpMV"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::rel_l2_error;
    use capstan_core::config::MemoryKind;
    use capstan_tensor::gen::Dataset;

    fn small_matrix() -> Coo {
        Dataset::Ckt11752.generate_scaled(0.02)
    }

    #[test]
    fn csr_matches_reference() {
        let m = small_matrix();
        let app = CsrSpmv::new(&m);
        let cfg = CapstanConfig::paper_default();
        let (wl, y) = app.record(&cfg);
        assert!(rel_l2_error(&y, &app.reference()) < 1e-5);
        assert_eq!(wl.tiles.len(), cfg.effective_outer_par(1));
        // Every non-zero performs one random V read.
        let total_reads: u64 = wl.tiles.iter().map(|t| t.sram.total_requests).sum();
        assert_eq!(total_reads, app.matrix.nnz() as u64);
    }

    #[test]
    fn coo_matches_reference_and_does_rmw() {
        let m = small_matrix();
        let app = CooSpmv::new(&m);
        let cfg = CapstanConfig::paper_default();
        let (wl, y) = app.record(&cfg);
        assert!(rel_l2_error(&y, &app.reference()) < 1e-5);
        // Same-row runs coalesce through the reduce stage, so the atomic
        // count is between the distinct-row count and nnz.
        let rmws: u64 = wl.tiles.iter().map(|t| t.sram.rmw_requests).sum();
        assert!(rmws <= m.nnz() as u64);
        let distinct_rows: u64 = {
            let mut rows: Vec<u32> = m.iter().map(|(r, _, _)| r).collect();
            rows.dedup();
            rows.len() as u64
        };
        assert!(
            rmws >= distinct_rows,
            "rmws {rmws} < distinct rows {distinct_rows}"
        );
        // COO loads two pointer streams: compressible traffic recorded.
        assert!(wl.tiles.iter().any(|t| t.dram_compressible_bytes > 0));
    }

    #[test]
    fn csc_matches_reference_and_skips_zero_columns() {
        let m = small_matrix();
        let app = CscSpmv::new(&m);
        let cfg = CapstanConfig::paper_default();
        let (wl, y) = app.record(&cfg);
        assert!(rel_l2_error(&y, &app.reference()) < 1e-5);
        // Work done must track only the non-zero input columns.
        let touched_nnz: usize = (0..m.cols())
            .filter(|&c| app.x.get(c as u32) != 0.0)
            .map(|c| app.matrix.col_len(c))
            .sum();
        let lane_work: u64 = wl.tiles.iter().map(|t| t.lane_work).sum();
        assert_eq!(lane_work, touched_nnz as u64);
    }

    #[test]
    fn csc_faster_than_coo_per_nonzero() {
        // CSC skips ~70% of the input: fewer cycles than COO on the same
        // matrix (both normalized per executed operation they are similar,
        // but end-to-end CSC does less work).
        let m = small_matrix();
        let cfg = CapstanConfig::new(MemoryKind::Hbm2e);
        let csc = CscSpmv::new(&m).simulate(&cfg);
        let coo = CooSpmv::new(&m).simulate(&cfg);
        assert!(
            csc.cycles < coo.cycles,
            "CSC {} should beat COO {}",
            csc.cycles,
            coo.cycles
        );
    }

    #[test]
    fn empty_matrix_workloads_are_valid() {
        let m = Coo::zeros(64, 64);
        let cfg = CapstanConfig::paper_default();
        for app in [
            &CsrSpmv::new(&m) as &dyn App,
            &CooSpmv::new(&m),
            &CscSpmv::new(&m),
            &BcsrSpmv::new(&m, 16),
        ] {
            let report = app.simulate(&cfg);
            assert!(report.cycles >= 1);
        }
    }

    #[test]
    fn bcsr_matches_reference() {
        let m = small_matrix();
        let app = BcsrSpmv::new(&m, 16);
        let cfg = CapstanConfig::paper_default();
        let (wl, y) = app.record(&cfg);
        assert!(rel_l2_error(&y, &app.reference()) < 1e-5);
        // CSR reference agrees too (same matrix, different storage).
        let csr = CsrSpmv::new(&m);
        assert!(rel_l2_error(&y, &csr.reference()) < 1e-4);
        // Lane work covers every stored value plus the per-block x reads.
        let stored = app.matrix.stored_values() as u64;
        let x_reads = app.matrix.blocks() as u64 * 16;
        let lane_work: u64 = wl.tiles.iter().map(|t| t.lane_work).sum();
        assert_eq!(lane_work, stored + x_reads);
    }

    #[test]
    fn bcsr_uses_no_scanner_and_full_vectors() {
        let m = Dataset::Bcsstk30.generate_scaled(0.01);
        let app = BcsrSpmv::new(&m, 16);
        let cfg = CapstanConfig::paper_default();
        let (wl, _) = app.record(&cfg);
        let scan: u64 = wl.tiles.iter().map(|t| t.scan_cycles).sum();
        assert_eq!(scan, 0, "block iteration needs no sparse loop header");
        // 16x16 blocks on 16 lanes: every vector slot does useful work
        // (boundary blocks may clip, so allow a small shortfall).
        let lane_work: u64 = wl.tiles.iter().map(|t| t.lane_work).sum();
        let slots: u64 = wl.tiles.iter().map(|t| t.vectors).sum::<u64>() * 16;
        assert!(
            lane_work as f64 > slots as f64 * 0.95,
            "vector utilization {:.3}",
            lane_work as f64 / slots as f64
        );
    }

    #[test]
    fn dcsr_matches_reference_and_skips_empty_rows() {
        // A hyper-sparse matrix: 8192 rows, only ~64 occupied.
        let m = capstan_tensor::gen::uniform(8192, 8192, 96, 21);
        let app = DcsrSpmv::new(&m);
        let cfg = CapstanConfig::paper_default();
        let (wl, y) = app.record(&cfg);
        assert!(rel_l2_error(&y, &app.reference()) < 1e-5);
        assert!(rel_l2_error(&y, &CsrSpmv::new(&m).reference()) < 1e-5);
        // Lane work touches only real non-zeros — empty rows cost nothing
        // in the loop body.
        let lane_work: u64 = wl.tiles.iter().map(|t| t.lane_work).sum();
        assert_eq!(lane_work, m.nnz() as u64);
        // The scanner pays for walking the occupancy bit-vector instead.
        let scan: u64 = wl.tiles.iter().map(|t| t.scan_cycles).sum();
        assert!(scan > 0, "sparse row iteration must use the scanner");
    }

    #[test]
    fn dcsr_pointer_traffic_beats_csr_on_hypersparse() {
        let m = capstan_tensor::gen::uniform(8192, 8192, 96, 21);
        assert!(capstan_tensor::dcsr::prefers_dcsr(&m));
        let cfg = CapstanConfig::new(MemoryKind::Ddr4);
        let dcsr_wl = DcsrSpmv::new(&m).build(&cfg);
        let csr_wl = CsrSpmv::new(&m).build(&cfg);
        let bytes = |wl: &capstan_core::program::Workload| -> u64 {
            wl.tiles.iter().map(|t| t.dram_stream_bytes).sum()
        };
        // CSR streams rows+1 pointers; DCSR streams 2 words per occupied
        // row. Both still stream the dense input vector, so the total
        // traffic gap is bounded by that shared term.
        assert!(
            bytes(&dcsr_wl) * 2 < bytes(&csr_wl),
            "DCSR {} bytes should be well under half of CSR {} bytes",
            bytes(&dcsr_wl),
            bytes(&csr_wl)
        );
        // The traffic gap shows up in end-to-end cycles on DDR4.
        let dcsr_cycles = DcsrSpmv::new(&m).simulate(&cfg).cycles;
        let csr_cycles = CsrSpmv::new(&m).simulate(&cfg).cycles;
        assert!(
            dcsr_cycles < csr_cycles,
            "hypersparse: DCSR {dcsr_cycles} should beat CSR {csr_cycles}"
        );
        // And the heuristic flips once rows fill up.
        let dense_rows = capstan_tensor::gen::uniform(256, 256, 4096, 3);
        assert!(!capstan_tensor::dcsr::prefers_dcsr(&dense_rows));
    }

    #[test]
    fn bcsr_beats_csr_on_clustered_blocks_and_loses_scattered() {
        let cfg = CapstanConfig::new(MemoryKind::Hbm2e);
        // Dense banded structure: blocks fill well, BCSR's regular
        // compute wins over CSR's random reads.
        let clustered = capstan_tensor::gen::banded(2048, 120_000, 11);
        let bcsr_c = BcsrSpmv::new(&clustered, 16);
        assert!(
            bcsr_c.matrix().fill_ratio() > 0.5,
            "banded blocks should fill"
        );
        let bcsr_cycles = bcsr_c.simulate(&cfg).cycles;
        let csr_cycles = CsrSpmv::new(&clustered).simulate(&cfg).cycles;
        assert!(
            bcsr_cycles < csr_cycles,
            "clustered: BCSR {bcsr_cycles} should beat CSR {csr_cycles}"
        );
        // Scattered uniform structure: near-empty blocks waste nearly all
        // lane work and DRAM traffic.
        let scattered = capstan_tensor::gen::uniform(2048, 2048, 8192, 13);
        let bcsr_s = BcsrSpmv::new(&scattered, 16);
        assert!(
            bcsr_s.matrix().fill_ratio() < 0.1,
            "uniform blocks should be sparse"
        );
        let bcsr_cycles = bcsr_s.simulate(&cfg).cycles;
        let csr_cycles = CsrSpmv::new(&scattered).simulate(&cfg).cycles;
        assert!(
            bcsr_cycles > csr_cycles,
            "scattered: CSR {csr_cycles} should beat BCSR {bcsr_cycles}"
        );
    }
}
