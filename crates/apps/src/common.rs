//! Shared helpers for application mappings: tiling and deterministic
//! input generation.

use capstan_tensor::{Csr, Value};

/// Round-robin assignment of `n` items to `tiles` tiles: item `i` goes to
/// tile `i % tiles` (the paper's round-robin division of rows, columns,
/// or non-zero values, §4).
pub fn round_robin(n: usize, tiles: usize, tile: usize) -> impl Iterator<Item = usize> {
    (tile..n).step_by(tiles.max(1))
}

/// A deterministic dense input vector: non-zero everywhere, values bounded
/// away from zero so dot products never cancel exactly in tests.
pub fn dense_vector(n: usize) -> Vec<Value> {
    (0..n).map(|i| 1.0 + (i % 7) as Value * 0.25).collect()
}

/// Inverse out-degree weights used by PageRank (`rank[s] / outdeg[s]`).
pub fn inv_out_degree(adj_out: &Csr) -> Vec<Value> {
    (0..adj_out.rows())
        .map(|v| {
            let d = adj_out.row_len(v);
            if d == 0 {
                0.0
            } else {
                1.0 / d as Value
            }
        })
        .collect()
}

/// Maximum absolute difference between two value slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[Value], b: &[Value]) -> Value {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, Value::max)
}

/// Relative L2 error `||a - b|| / max(||b||, eps)` — the tolerance metric
/// used by the floating-point app tests (Capstan reorders float
/// accumulation, so exact equality is not expected).
pub fn rel_l2_error(a: &[Value], b: &[Value]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| (*y as f64).powi(2)).sum::<f64>().sqrt();
    num / den.max(1e-30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capstan_tensor::gen;
    use capstan_tensor::Csr;

    #[test]
    fn round_robin_partitions_everything() {
        let mut seen = [false; 10];
        for t in 0..3 {
            for i in round_robin(10, 3, t) {
                assert!(!seen[i], "item {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dense_vector_has_no_zeros() {
        assert!(dense_vector(100).iter().all(|&v| v != 0.0));
    }

    #[test]
    fn inv_out_degree_handles_sinks() {
        let g = gen::road_network(100, 260, 1);
        let adj = Csr::from_coo(&g);
        let inv = inv_out_degree(&adj);
        for (v, &w) in inv.iter().enumerate() {
            if adj.row_len(v) == 0 {
                assert_eq!(w, 0.0);
            } else {
                assert!((w * adj.row_len(v) as Value - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn error_metrics() {
        let a = [1.0, 2.0];
        let b = [1.0, 2.5];
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert!(rel_l2_error(&a, &a) < 1e-12);
        assert!(rel_l2_error(&a, &b) > 0.1);
    }
}
