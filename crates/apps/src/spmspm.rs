//! Row-product (Gustavson) sparse matrix-matrix multiply (paper §2.4).
//!
//! "When computing each output row on Capstan, the first step is computing
//! the union of the input rows' bit-vectors, which yields a bit-vector
//! indicating which entries in C_i will be non-zero. Then, each input
//! bit-vector is intersected with the output indices; this produces
//! addresses that can be used to accumulate directly into a compressed
//! local tile. Finally, the compressed local tile is swapped with zero (to
//! prepare for the next iteration) and written to DRAM using sparse
//! iteration."

use crate::App;
use capstan_core::config::CapstanConfig;
use capstan_core::program::{Workload, WorkloadBuilder};
use capstan_tensor::bitvec::BitVec;
use capstan_tensor::{Coo, Csr, Index, Value};

use capstan_arch::scanner::ScanMode;
use capstan_arch::spmu::RmwOp;

/// Gustavson SpMSpM: `C = A * B` with per-output-row union/intersect
/// passes over bit-vectors.
#[derive(Debug, Clone)]
pub struct SpMSpM {
    a: Csr,
    b: Csr,
    /// Cached occupancy bit-vectors of B's rows ("CSR-Bit" in Table 2).
    b_bits: Vec<BitVec>,
}

impl SpMSpM {
    /// Creates the benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn new(a: &Coo, b: &Coo) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        let b_csr = Csr::from_coo(b);
        let b_bits = (0..b_csr.rows())
            .map(|j| BitVec::from_indices(b.cols(), b_csr.row_cols(j)).expect("in bounds"))
            .collect();
        SpMSpM {
            a: Csr::from_coo(a),
            b: b_csr,
            b_bits,
        }
    }

    /// Squares the dataset matrix (the usual SpMSpM benchmark setup).
    pub fn squared(m: &Coo) -> Self {
        SpMSpM::new(m, m)
    }

    /// CPU reference (classic Gustavson with a dense accumulator).
    pub fn reference(&self) -> Coo {
        let rows = self.a.rows();
        let cols = self.b.cols();
        let mut triplets: Vec<(Index, Index, Value)> = Vec::new();
        let mut acc = vec![0.0f32; cols];
        let mut touched: Vec<u32> = Vec::new();
        for i in 0..rows {
            for (j, av) in self.a.row(i) {
                for (k, bv) in self.b.row(j as usize) {
                    if acc[k as usize] == 0.0 && !touched.contains(&k) {
                        touched.push(k);
                    }
                    acc[k as usize] += av * bv;
                }
            }
            touched.sort_unstable();
            for &k in &touched {
                if acc[k as usize] != 0.0 {
                    triplets.push((i as Index, k, acc[k as usize]));
                }
                acc[k as usize] = 0.0;
            }
            touched.clear();
        }
        Coo::from_triplets(rows, cols, triplets).expect("valid result")
    }

    /// Records the Capstan execution.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, Coo) {
        let tiles = cfg.effective_outer_par(2);
        let rows = self.a.rows();
        let cols = self.b.cols();
        let mut wl = WorkloadBuilder::for_config("SpMSpM", cfg);
        wl.set_cus_per_pipeline(2); // nested scanners (paper §3.3)
        let mut triplets: Vec<(Index, Index, Value)> = Vec::new();
        // B is SRAM-resident: the evaluated SpMSpM matrices fit in one
        // SpMU (paper §4.4: "convolution and matrix-matrix multiply ...
        // are almost entirely on-chip"). B streams from DRAM once and is
        // multicast to every tile on-chip, so each tile accounts a
        // 1/tiles share of that traffic.
        let b_bytes: usize = self.b.nnz() * 8
            + self
                .b_bits
                .iter()
                .map(|bv| bv.storage_bytes())
                .sum::<usize>();
        for tile in 0..tiles {
            let mut t = wl.tile();
            let mut streamed = b_bytes / tiles;
            for i in crate::common::round_robin(rows, tiles, tile) {
                let a_cols = self.a.row_cols(i);
                let a_vals = self.a.row_values(i);
                if a_cols.is_empty() {
                    continue;
                }
                streamed += a_cols.len() * 8;
                // Pass 1: union of the input rows' bit-vectors -> Val[i].
                // The ORs run in the CU's 512-bit vector datapath (16
                // words per cycle), not through the SpMU — building the
                // bitset with memory RMWs is exactly what §3.4 warns
                // against.
                let mut val = BitVec::zeros(cols);
                for &j in a_cols {
                    let bbv = &self.b_bits[j as usize];
                    let words = cols.div_ceil(32);
                    t.foreach_vec(words, |_, _| {}); // vector OR pass
                    val = val.union(bbv);
                }
                // Dense accumulator addressed by union rank (the
                // compressed local tile of §2.4).
                let union_idx = val.to_indices();
                let mut acc = vec![0.0f32; union_idx.len()];
                // Pass 2: intersect each B row with the output indices and
                // accumulate into the compressed tile.
                for (&j, &av) in a_cols.iter().zip(a_vals) {
                    let bbv = &self.b_bits[j as usize];
                    let b_vals = self.b.row_values(j as usize);
                    t.scan(ScanMode::Intersect, bbv, Some(&val), |t, e| {
                        // e.jb indexes the compressed output row.
                        t.sram_rmw(e.jb as u32, RmwOp::AddF); // C[i][k] +=
                        acc[e.jb as usize] += av * b_vals[e.ja as usize];
                    });
                }
                // Pass 3: sparse iteration over Val[i]: swap the tile with
                // zero and stream the row out.
                t.scan(ScanMode::Union, &val, None, |t, e| {
                    t.sram_rmw(e.jprime, RmwOp::Swap);
                    triplets.push((i as Index, e.j, acc[e.jprime as usize]));
                });
                streamed += union_idx.len() * 8;
            }
            t.dram_stream_read(streamed);
            t.dram_stream_write(streamed / 2);
            wl.commit(t);
        }
        // Pre-computing indices may emit explicit zeros (paper §2.4:
        // "generally accepted"); drop them for the comparison.
        let c = Coo::from_triplets(rows, cols, triplets).expect("valid output");
        (wl.finish(), c)
    }
}

impl App for SpMSpM {
    fn name(&self) -> &'static str {
        "SpMSpM"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capstan_tensor::gen::Dataset;

    fn small() -> SpMSpM {
        SpMSpM::squared(&Dataset::Qc324.generate_scaled(0.3))
    }

    #[test]
    fn product_matches_reference() {
        let app = small();
        let cfg = CapstanConfig::paper_default();
        let (_, c) = app.record(&cfg);
        let reference = app.reference();
        assert_eq!(c.rows(), reference.rows());
        // Compare as dense to tolerate ordering differences.
        let cd = c.to_dense();
        let rd = reference.to_dense();
        for r in 0..c.rows() {
            for (x, y) in cd.row(r).iter().zip(rd.row(r)) {
                assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()), "({r}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn intersections_vectorize() {
        // The paper: "Capstan can process up to 16 intersections in a
        // single CU [per cycle]". The recorded scan stats must show
        // multi-element emission per cycle on these dense-ish inputs.
        let app = small();
        let cfg = CapstanConfig::paper_default();
        let wl = app.build(&cfg);
        let emitted: u64 = wl.tiles.iter().map(|t| t.scan_emitted).sum();
        let cycles: u64 = wl.tiles.iter().map(|t| t.scan_cycles).sum();
        assert!(emitted > 0 && cycles > 0);
        let per_cycle = emitted as f64 / cycles as f64;
        assert!(per_cycle > 1.5, "only {per_cycle:.2} intersections/cycle");
    }

    #[test]
    fn accumulator_updates_are_rmw() {
        let app = small();
        let cfg = CapstanConfig::paper_default();
        let wl = app.build(&cfg);
        let rmw: u64 = wl.tiles.iter().map(|t| t.sram.rmw_requests).sum();
        // At least one RMW per multiply (union ORs + accumulates + swaps).
        let flops: usize = (0..app.a.rows())
            .map(|i| {
                app.a
                    .row_cols(i)
                    .iter()
                    .map(|&j| app.b.row_len(j as usize))
                    .sum::<usize>()
            })
            .sum();
        assert!(rmw as usize >= flops, "rmw {rmw} < flops {flops}");
    }

    #[test]
    fn identity_product() {
        // A * I = A.
        let n = 64;
        let eye = Coo::from_triplets(n, n, (0..n as Index).map(|i| (i, i, 1.0)).collect()).unwrap();
        let a = Dataset::Mbeacxc.generate_scaled(0.12);
        let square = Coo::from_triplets(
            n,
            n,
            a.iter()
                .filter(|(r, c, _)| (*r as usize) < n && (*c as usize) < n)
                .collect(),
        )
        .unwrap();
        let app = SpMSpM::new(&square, &eye);
        let cfg = CapstanConfig::paper_default();
        let (_, c) = app.record(&cfg);
        assert_eq!(c.to_dense(), square.to_dense());
    }
}
