//! Single-source shortest paths with frontier bitsets (paper Table 2).
//!
//! The mapping mirrors BFS, but the per-edge update chain is
//! `nd = Dist[s] + G[s][d]`, `Ptr[d] = Dist[d] > nd ? s : Ptr[d]`,
//! `Fr[d] |= Dist[d] > nd`, `Dist[d] = min(Dist[d], nd)` — the SpMU's
//! *min-report-changed* atomic (paper §3.1). SSSP is also the paper's
//! example of an application that requires **address-ordered** memory
//! (Table 3): two relaxations of the same node must not race.

use crate::App;
use capstan_core::config::CapstanConfig;
use capstan_core::program::{Workload, WorkloadBuilder};
use capstan_tensor::bitvec::BitVec;
use capstan_tensor::partition::{partition_graph, Partition};
use capstan_tensor::{Coo, Csr, Value};

use capstan_arch::scanner::ScanMode;
use capstan_arch::spmu::RmwOp;

/// SSSP result: distances and predecessor pointers.
#[derive(Debug, Clone, PartialEq)]
pub struct SsspResult {
    /// Shortest distance per node (`f32::INFINITY` = unreachable).
    pub dist: Vec<Value>,
    /// Predecessor per node (`u32::MAX` = none).
    pub parent: Vec<u32>,
}

/// Frontier-based (Bellman-Ford-style) single-source shortest paths.
#[derive(Debug, Clone)]
pub struct Sssp {
    adj: Csr,
    source: u32,
    /// Write predecessor pointers (disabled for the Graphicionado
    /// comparison variant).
    pub write_backpointers: bool,
    /// Safety cap on relaxation rounds.
    pub max_rounds: usize,
}

impl Sssp {
    /// Builds the benchmark from a weighted edge list, starting at the
    /// highest-out-degree node.
    pub fn new(graph: &Coo) -> Self {
        let adj = Csr::from_coo(graph);
        let source = (0..adj.rows()).max_by_key(|&v| adj.row_len(v)).unwrap_or(0) as u32;
        Sssp {
            adj,
            source,
            write_backpointers: true,
            max_rounds: 10_000,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.adj.rows()
    }

    /// Dijkstra CPU reference (weights must be non-negative, which the
    /// generators guarantee).
    pub fn reference(&self) -> SsspResult {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.nodes();
        let mut dist = vec![Value::INFINITY; n];
        let mut parent = vec![u32::MAX; n];
        if n == 0 {
            return SsspResult { dist, parent };
        }
        dist[self.source as usize] = 0.0;
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        // f32 distances ordered via their monotone bit pattern (weights
        // are non-negative, so this is exact).
        let key = |d: Value| (d.to_bits() as u64, 0u32);
        heap.push(Reverse((key(0.0).0, self.source)));
        while let Some(Reverse((k, v))) = heap.pop() {
            let d = f32::from_bits(k as u32);
            if d > dist[v as usize] {
                continue;
            }
            for (u, w) in self.adj.row(v as usize) {
                let nd = d + w;
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    parent[u as usize] = v;
                    heap.push(Reverse((key(nd).0, u)));
                }
            }
        }
        SsspResult { dist, parent }
    }

    fn partition(&self, tiles: usize) -> Partition {
        partition_graph(&self.adj, tiles)
    }

    /// Records the Capstan execution (level-synchronous relaxation).
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, SsspResult) {
        let tiles = cfg.effective_outer_par(1);
        let part = self.partition(tiles);
        let n = self.nodes();
        let mut dist = vec![Value::INFINITY; n];
        let mut parent = vec![u32::MAX; n];
        let mut wl = WorkloadBuilder::for_config("SSSP", cfg);
        if n == 0 {
            return (wl.finish(), SsspResult { dist, parent });
        }
        dist[self.source as usize] = 0.0;

        // Precompute per-round frontiers by running the relaxation.
        let mut rounds: Vec<Vec<u32>> = Vec::new();
        {
            let mut frontier = vec![self.source];
            while !frontier.is_empty() && rounds.len() < self.max_rounds {
                rounds.push(frontier.clone());
                let mut changed: Vec<u32> = Vec::new();
                for &s in &frontier {
                    let ds = dist[s as usize];
                    for (d, w) in self.adj.row(s as usize) {
                        let nd = ds + w;
                        if nd < dist[d as usize] {
                            dist[d as usize] = nd;
                            parent[d as usize] = s;
                            if !changed.contains(&d) {
                                changed.push(d);
                            }
                        }
                    }
                }
                frontier = changed;
            }
        }

        for tile in 0..tiles {
            let mut t = wl.tile();
            let owned = part.members()[tile].len();
            let tile_edges: usize = part.members()[tile]
                .iter()
                .map(|&v| self.adj.row_len(v as usize))
                .sum();
            t.dram_stream_read(owned * 8 + tile_edges * 8); // structure + weights
            t.dram_stream_write(owned * 8);
            for frontier in &rounds {
                let mut bits = BitVec::zeros(n);
                let mut local_count = 0usize;
                for &v in frontier {
                    if part.part_of(v as usize) == tile {
                        bits.set(v as usize, true);
                        local_count += 1;
                    }
                }
                if local_count == 0 {
                    continue;
                }
                t.convert_pointers(local_count);
                t.scan_outer(ScanMode::Union, &bits, None, |t, e| {
                    let s = e.j;
                    let dsts = self.adj.row_cols(s as usize);
                    t.foreach_vec(dsts.len(), |t, k| {
                        let d = dsts[k];
                        let owner = part.part_of(d as usize);
                        if owner != tile {
                            t.remote_update_at(owner, d as u64);
                        }
                        t.sram_rmw(d, RmwOp::MinReportChanged); // Dist[d]
                        if self.write_backpointers {
                            t.sram_rmw(d + n as u32, RmwOp::Write); // Ptr[d]
                        }
                        t.sram_rmw(d + 2 * n as u32, RmwOp::Or); // Fr[d]
                    });
                });
            }
            wl.commit(t);
        }
        wl.set_dependent_rounds(rounds.len() as u64);
        (wl.finish(), SsspResult { dist, parent })
    }
}

impl App for Sssp {
    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capstan_tensor::gen::Dataset;

    fn road() -> Coo {
        Dataset::UsRoads.generate_scaled(0.01)
    }

    #[test]
    fn distances_match_dijkstra() {
        let g = road();
        let app = Sssp::new(&g);
        let cfg = CapstanConfig::paper_default();
        let (_, result) = app.record(&cfg);
        let reference = app.reference();
        for (v, (&a, &b)) in result.dist.iter().zip(&reference.dist).enumerate() {
            if b.is_infinite() {
                assert!(a.is_infinite(), "node {v}");
            } else {
                assert!((a - b).abs() < 1e-4, "node {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn parents_form_shortest_path_tree() {
        let g = road();
        let app = Sssp::new(&g);
        let cfg = CapstanConfig::paper_default();
        let (_, result) = app.record(&cfg);
        for (v, &p) in result.parent.iter().enumerate() {
            if p == u32::MAX {
                continue;
            }
            // dist[v] = dist[p] + w(p, v) for the recorded parent edge.
            let w = app
                .adj
                .row(p as usize)
                .find(|(d, _)| *d == v as u32)
                .map(|(_, w)| w)
                .expect("parent edge exists");
            assert!((result.dist[v] - (result.dist[p as usize] + w)).abs() < 1e-4);
        }
    }

    #[test]
    fn uses_min_report_changed() {
        let g = road();
        let app = Sssp::new(&g);
        let cfg = CapstanConfig::paper_default();
        let (wl, _) = app.record(&cfg);
        let rmws: u64 = wl.tiles.iter().map(|t| t.sram.rmw_requests).sum();
        assert!(rmws > 0);
        assert!(wl.dependent_rounds > 3);
    }

    #[test]
    fn relaxation_takes_at_least_bfs_levels() {
        let g = road();
        let sssp = Sssp::new(&g);
        let bfs = crate::bfs::Bfs::from_source(&g, sssp.source);
        let cfg = CapstanConfig::paper_default();
        let (wl_s, _) = sssp.record(&cfg);
        let (wl_b, _) = bfs.record(&cfg);
        assert!(wl_s.dependent_rounds + 1 >= wl_b.dependent_rounds);
    }
}
