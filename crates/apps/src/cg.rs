//! Conjugate-gradient solver: a second Krylov method beside BiCGStab.
//!
//! The paper's introduction motivates exactly this workload class:
//! "Krylov methods (a building block for optimization, simulation, and
//! scientific computing) run multiple sparse and dense kernels which must
//! be fused for efficient execution" (§1). BiCGStab (§4.4) is the paper's
//! fusion showcase for general systems; CG is the canonical solver for the
//! symmetric positive-definite systems produced by FEM discretizations
//! (the `bcsstk30` / `Trefethen_20000` structure class of Table 6).
//!
//! Per iteration CG runs one SpMV, two dot products, and three AXPYs —
//! on Capstan all six fuse into one streaming pipeline in which only the
//! matrix touches DRAM. [`ConjugateGradient::record_unfused`] records the
//! kernel-by-kernel variant a BLAS-library implementation would run, with
//! every intermediate vector round-tripping through DRAM.

use crate::common::round_robin;
use crate::App;
use capstan_core::config::CapstanConfig;
use capstan_core::program::{TileRecorder, Workload, WorkloadBuilder};
use capstan_tensor::{Coo, Csr, Value};

/// CG solving `A x = b` (A symmetric positive-definite) for a fixed
/// iteration budget.
///
/// # Example
///
/// ```
/// use capstan_apps::cg::ConjugateGradient;
/// use capstan_core::config::CapstanConfig;
/// use capstan_tensor::gen;
///
/// // A multi-diagonal (FEM-like) system is symmetric positive-definite.
/// let mut solver = ConjugateGradient::new(&gen::multi_diagonal(500, 3500));
/// solver.iterations = 8;
/// let (workload, result) = solver.record(&CapstanConfig::paper_default());
/// assert!(result.residuals.last().unwrap() < result.residuals.first().unwrap());
/// assert_eq!(workload.dependent_rounds, 8);
/// ```
#[derive(Debug, Clone)]
pub struct ConjugateGradient {
    a: Csr,
    b: Vec<Value>,
    /// Solver iterations to record (each is a dependent round).
    pub iterations: usize,
}

/// Result of a solve: the iterate and per-iteration residual norms.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Final iterate.
    pub x: Vec<Value>,
    /// Residual 2-norm after each iteration.
    pub residuals: Vec<f64>,
}

impl ConjugateGradient {
    /// Sets up the solver with `b = A * ones` (known solution: all-ones).
    ///
    /// The caller is responsible for `matrix` being symmetric
    /// positive-definite; CG does not converge otherwise (use
    /// [`crate::bicgstab::BiCgStab`] for general systems).
    pub fn new(matrix: &Coo) -> Self {
        let a = Csr::from_coo(matrix);
        let ones = vec![1.0; a.cols()];
        let b = a.spmv(&ones);
        ConjugateGradient {
            a,
            b,
            iterations: 12,
        }
    }

    /// The system matrix.
    pub fn matrix(&self) -> &Csr {
        &self.a
    }

    /// CPU reference solve (identical algorithm, unrecorded).
    pub fn reference(&self) -> CgResult {
        self.solve(&mut Recording::None)
    }

    /// Records the fused Capstan execution: SpMV + BLAS1 as one streaming
    /// pipeline, vectors SRAM-resident.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, CgResult) {
        self.record_inner(cfg, true)
    }

    /// Records the unfused (kernel-by-kernel) execution: each of the six
    /// BLAS calls reads its operands from DRAM and writes its result back,
    /// the cost the paper attributes to CPU/GPU library baselines ("the
    /// inter-kernel overhead causes up to a 3× slowdown", §4.4).
    pub fn record_unfused(&self, cfg: &CapstanConfig) -> (Workload, CgResult) {
        self.record_inner(cfg, false)
    }

    fn record_inner(&self, cfg: &CapstanConfig, fused: bool) -> (Workload, CgResult) {
        let tiles = cfg.effective_outer_par(1);
        let name = if fused { "CG" } else { "CG (unfused)" };
        let mut wl = WorkloadBuilder::for_config(name, cfg);
        wl.set_dependent_rounds(self.iterations as u64);
        let mut recorders: Vec<TileRecorder> = Vec::new();
        for _ in 0..tiles {
            recorders.push(wl.tile());
        }
        let mut recording = Recording::Tiles {
            recorders: &mut recorders,
            fused,
        };
        let result = self.solve(&mut recording);
        for rec in recorders {
            wl.commit(rec);
        }
        (wl.finish(), result)
    }

    /// The CG algorithm; the `recording` sink captures the hardware trace.
    fn solve(&self, recording: &mut Recording<'_>) -> CgResult {
        let n = self.a.rows();
        let mut x = vec![0.0f32; n];
        let mut r = self.b.clone(); // r0 = b - A*0
        let mut p = r.clone();
        let dot = |a: &[Value], b: &[Value]| -> Value { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let mut rr = dot(&r, &r);
        let mut residuals = Vec::new();

        for _ in 0..self.iterations {
            if rr.abs() < 1e-30 {
                break;
            }
            let ap = self.spmv_traced(&p, recording);
            let alpha = rr / dot(&p, &ap);
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rr_new = dot(&r, &r);
            let beta = rr_new / rr;
            rr = rr_new;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            // Dense BLAS1 work: two dots + three vector updates ≈ five
            // passes over n per iteration.
            recording.record_blas1(n, 5);
            residuals.push((rr as f64).sqrt());
        }
        CgResult { x, residuals }
    }

    /// SpMV, recording the CSR traffic per tile.
    fn spmv_traced(&self, x: &[Value], recording: &mut Recording<'_>) -> Vec<Value> {
        let y = self.a.spmv(x);
        recording.record_spmv(&self.a);
        y
    }
}

/// Where the solver's hardware trace goes: nowhere (CPU reference) or a
/// set of tile recorders (fused or unfused pipelines).
enum Recording<'a> {
    None,
    Tiles {
        recorders: &'a mut Vec<TileRecorder>,
        fused: bool,
    },
}

impl Recording<'_> {
    /// Records one SpMV: random `x[c]` reads plus the matrix stream; in
    /// unfused mode the input and output vectors also touch DRAM.
    fn record_spmv(&mut self, a: &Csr) {
        let Recording::Tiles { recorders, fused } = self else {
            return;
        };
        let tiles = recorders.len();
        for (tile, rec) in recorders.iter_mut().enumerate() {
            let mut tile_nnz = 0usize;
            let mut tile_rows = 0usize;
            for row in round_robin(a.rows(), tiles, tile) {
                tile_rows += 1;
                let cols = a.row_cols(row);
                tile_nnz += cols.len();
                rec.foreach_vec(cols.len(), |rec, k| {
                    rec.sram_read(cols[k]); // x[c] random read
                });
            }
            rec.dram_stream_read(tile_nnz * 8 + tile_rows * 4);
            if !*fused {
                // Kernel boundary: read x, write y.
                rec.dram_stream_read(a.cols() * 4 / tiles.max(1));
                rec.dram_stream_write(tile_rows * 4);
            }
        }
    }

    /// Records `passes` dense vector passes over `n` elements (dot
    /// products and AXPYs); unfused, each pass also streams its operand
    /// and result through DRAM.
    fn record_blas1(&mut self, n: usize, passes: usize) {
        let Recording::Tiles { recorders, fused } = self else {
            return;
        };
        let tiles = recorders.len();
        for (tile, rec) in recorders.iter_mut().enumerate() {
            let share = round_robin(n, tiles, tile).count();
            for _ in 0..passes {
                rec.foreach_vec(share, |_, _| {});
                if !*fused {
                    // Two operand streams in, one result out per pass.
                    rec.dram_stream_read(share * 8);
                    rec.dram_stream_write(share * 4);
                }
            }
        }
    }
}

impl App for ConjugateGradient {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capstan_core::config::MemoryKind;
    use capstan_tensor::gen::Dataset;

    /// A symmetric positive-definite system: symmetrize the Trefethen
    /// generator's structure, then boost the diagonal to strict diagonal
    /// dominance (a sufficient condition for positive-definiteness).
    fn system() -> ConjugateGradient {
        let coo = Dataset::Trefethen20000.generate_scaled(0.02);
        let t = coo.transpose();
        let n = coo.rows();
        let mut entries: Vec<(u32, u32, Value)> = Vec::new();
        let mut row_abs = vec![0.0f32; n];
        for (r, c, v) in coo.iter().chain(t.iter()) {
            if r != c {
                entries.push((r, c, v / 2.0));
                row_abs[r as usize] += (v / 2.0).abs();
            }
        }
        for i in 0..n as u32 {
            entries.push((i, i, 1.0 + 2.0 * row_abs[i as usize]));
        }
        let sym = Coo::from_triplets(n, n, entries).unwrap();
        let mut solver = ConjugateGradient::new(&sym);
        solver.iterations = 16;
        solver
    }

    #[test]
    fn converges_on_spd_system() {
        let solver = system();
        let result = solver.reference();
        assert!(!result.residuals.is_empty());
        let first = result.residuals.first().unwrap();
        let last = result.residuals.last().unwrap();
        assert!(
            last < &(first * 1e-2),
            "residuals should fall ≥100×: {result:?}"
        );
        let err = result
            .x
            .iter()
            .map(|&xi| ((xi - 1.0) as f64).abs())
            .fold(0.0, f64::max);
        assert!(err < 0.05, "max error {err}");
    }

    #[test]
    fn recorded_solve_matches_reference() {
        let solver = system();
        let cfg = CapstanConfig::paper_default();
        let (wl, result) = solver.record(&cfg);
        let reference = solver.reference();
        assert_eq!(result.residuals.len(), reference.residuals.len());
        for (a, b) in result.residuals.iter().zip(&reference.residuals) {
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
        assert_eq!(wl.dependent_rounds, solver.iterations as u64);
    }

    #[test]
    fn fusion_keeps_vectors_on_chip() {
        let solver = system();
        let cfg = CapstanConfig::paper_default();
        let fused: u64 = solver
            .record(&cfg)
            .0
            .tiles
            .iter()
            .map(|t| t.dram_stream_bytes)
            .sum();
        let unfused: u64 = solver
            .record_unfused(&cfg)
            .0
            .tiles
            .iter()
            .map(|t| t.dram_stream_bytes)
            .sum();
        // One SpMV and five BLAS1 passes per iteration round-trip in the
        // unfused variant; the gap must be at least the BLAS1 traffic.
        let n = solver.a.rows() as u64;
        let blas1 = 5 * 12 * n / 2; // conservative lower bound
        assert!(
            unfused > fused + blas1,
            "unfused {unfused} should exceed fused {fused} well beyond {blas1}"
        );
    }

    #[test]
    fn fused_solver_is_faster_on_ddr4() {
        // The paper's fusion claim shows up where bandwidth is scarce.
        let solver = system();
        let cfg = CapstanConfig::new(MemoryKind::Ddr4);
        let fused = capstan_core::perf::simulate(&solver.record(&cfg).0, &cfg);
        let unfused = capstan_core::perf::simulate(&solver.record_unfused(&cfg).0, &cfg);
        assert!(
            (fused.cycles as f64) < unfused.cycles as f64 * 0.95,
            "fused {} should beat unfused {} by >5%",
            fused.cycles,
            unfused.cycles
        );
    }

    #[test]
    fn random_reads_match_spmv_count() {
        let solver = system();
        let cfg = CapstanConfig::paper_default();
        let (wl, result) = solver.record(&cfg);
        let reads: u64 = wl.tiles.iter().map(|t| t.sram.total_requests).sum();
        // One SpMV per completed iteration, one x-read per nnz.
        let expected = solver.a.nnz() as u64 * result.residuals.len() as u64;
        assert_eq!(reads, expected);
    }
}
