#![deny(missing_docs)]

//! # capstan-apps
//!
//! The eleven applications of the Capstan paper (Table 2) plus five
//! extension apps, each expressed in the declarative programming model of
//! [`capstan_core::program`]:
//!
//! | App        | Format        | Outer loop        | Inner loop         | Random accesses        |
//! |------------|---------------|-------------------|--------------------|------------------------|
//! | CSR SpMV   | CSR           | dense rows        | dense cols-in-row  | `V[c]`                 |
//! | COO SpMV   | COO           | dense non-zeros   | —                  | `V[c]`, `Out[r]`       |
//! | CSC SpMV   | CSC           | sparse inputs     | dense rows-in-col  | `Out[r]`               |
//! | Conv       | dense/COO     | sparse activations| dense kernel nnz   | `Out[...]` (halo)      |
//! | PR-Pull    | CSR           | dense nodes       | dense in-edges     | `rank[s]`              |
//! | PR-Edge    | COO           | dense edges       | —                  | `rank[s]`, `acc[d]`    |
//! | BFS        | bitset + CSC  | sparse frontier   | dense out-edges    | `Rch[d]`, `Ptr[d]`     |
//! | SSSP       | bitset + CSC  | sparse frontier   | dense out-edges    | `Dist[d]`, `Ptr[d]`    |
//! | M+M        | CSR bit-tree  | dense rows        | sp-sp union        | —                      |
//! | SpMSpM     | CSR (+bit)    | dense rows        | sp-sp ∪/∩ passes   | `Val[i][k]`, `C[i][k]` |
//! | BiCGStab   | CSR + dense   | solver iterations | fused SpMV + BLAS1 | `V[c]`                 |
//! | SpMM/GCN   | CSR + dense   | dense rows        | dense features     | `XW[j][k]` (row fetch) |
//! | CG         | CSR + dense   | solver iterations | fused SpMV + BLAS1 | `x[c]`                 |
//! | BCSR SpMV  | BCSR          | dense block rows  | dense block        | — (contiguous `x`)     |
//! | DCSR SpMV  | DCSR          | sparse rows       | dense cols-in-row  | `V[c]`                 |
//!
//! Every app provides: a CPU **reference** implementation, a **recorded**
//! Capstan execution (functionally correct and traced), and the [`App`]
//! interface the experiment harness drives.
//!
//! Beyond the paper's table, three **extension applications** exercise the
//! same primitives on workloads the paper motivates but does not evaluate:
//! [`gnn`] (SpMM and a fused GCN layer — the "graph neural networks" of
//! §5), a conjugate-gradient solver (the Krylov-method motivation of §1),
//! and a BCSR SpMV (the block-sparse format of §2.1).

pub mod bfs;
pub mod bicgstab;
pub mod cg;
pub mod common;
pub mod conv;
pub mod gnn;
pub mod mpm;
pub mod pagerank;
pub mod spmspm;
pub mod spmv;
pub mod sssp;

use capstan_core::config::CapstanConfig;
use capstan_core::program::Workload;
use capstan_core::report::PerfReport;

/// A benchmark application that can be mapped onto Capstan.
pub trait App {
    /// Display name (matching the paper's tables).
    fn name(&self) -> &'static str;

    /// Records the application's execution as a workload under the given
    /// configuration (scanner widths and sampling limits affect the
    /// recording).
    fn build(&self, cfg: &CapstanConfig) -> Workload;

    /// Simulates the application end to end.
    fn simulate(&self, cfg: &CapstanConfig) -> PerfReport {
        capstan_core::perf::simulate(&self.build(cfg), cfg)
    }
}
