//! Graph-neural-network layer: the unified sparse-dense application the
//! paper motivates but does not evaluate.
//!
//! Paper §5 (related work): "separating graph analytics and linear algebra
//! may preclude new applications, like graph neural networks". A graph
//! convolution (GCN) layer is exactly that fusion — a dense GEMM over the
//! feature weights chained into a sparse-matrix × dense-matrix product
//! (SpMM) over the graph adjacency:
//!
//! ```text
//! H' = relu( Â · (H · W) )      Â = D⁻¹(A + I)  (row-normalized)
//! ```
//!
//! The Capstan mapping shows why a vector RDA suits GNNs where pure graph
//! accelerators struggle:
//!
//! * The **feature dimension maps to the vector lanes**. PR-Pull suffers
//!   vector-length underutilization because most vertices have few
//!   in-edges (paper Fig. 7); in SpMM the same adjacency irregularity only
//!   perturbs the *address* stream, while every lane stays busy on the
//!   16-wide feature rows.
//! * Neighbor rows of the intermediate `X·W` are fetched by **random SRAM
//!   reads at consecutive addresses**: the hashed banking (§3.1) spreads a
//!   row fetch across all 16 banks conflict-free.
//! * The dense GEMM and the SpMM **fuse into one streaming pipeline**: the
//!   intermediate `X·W` never leaves the chip, the same argument the paper
//!   makes for BiCGStab (§4.4). [`GcnLayer::record_unfused`] quantifies
//!   the round-trip this saves.

use crate::common::round_robin;
use crate::App;
use capstan_core::config::CapstanConfig;
use capstan_core::program::{TileRecorder, Workload, WorkloadBuilder};
use capstan_tensor::dense::DenseMatrix;
use capstan_tensor::{Coo, Csr, Value};

/// Sparse-matrix × dense-matrix product (`C = A · B`) with the feature
/// dimension vectorized across lanes.
///
/// This is the standalone SpMM kernel; [`GcnLayer`] composes it with a
/// dense GEMM into a full graph-convolution layer.
///
/// # Example
///
/// ```
/// use capstan_apps::gnn::Spmm;
/// use capstan_apps::App;
/// use capstan_core::config::CapstanConfig;
/// use capstan_tensor::{gen, DenseMatrix};
///
/// let graph = gen::power_law(500, 3000, 2.1, 7);
/// let features = DenseMatrix::from_fn(graph.cols(), 16, |r, c| ((r + c) % 3) as f32);
/// let app = Spmm::new(&graph, features);
/// let report = app.simulate(&CapstanConfig::paper_default());
/// assert!(report.cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Spmm {
    a: Csr,
    b: DenseMatrix,
}

impl Spmm {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn new(a: &Coo, b: DenseMatrix) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        Spmm {
            a: Csr::from_coo(a),
            b,
        }
    }

    /// The sparse operand.
    pub fn a(&self) -> &Csr {
        &self.a
    }

    /// The dense operand.
    pub fn b(&self) -> &DenseMatrix {
        &self.b
    }

    /// CPU reference result.
    pub fn reference(&self) -> DenseMatrix {
        spmm_reference(&self.a, &self.b)
    }

    /// Records the Capstan execution: the workload trace plus the
    /// functionally computed product.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, DenseMatrix) {
        let tiles = cfg.effective_outer_par(1);
        let mut wl = WorkloadBuilder::for_config("SpMM", cfg);
        let mut out = DenseMatrix::zeros(self.a.rows(), self.b.cols());
        for tile in 0..tiles {
            let mut t = wl.tile();
            record_spmm_tile(&mut t, &self.a, &self.b, &mut out, tiles, tile, cfg);
            wl.commit(t);
        }
        (wl.finish(), out)
    }
}

impl App for Spmm {
    fn name(&self) -> &'static str {
        "SpMM"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

/// One tile's share of an SpMM: round-robin rows of `a`, neighbor rows of
/// `b` fetched with random (but lane-consecutive) SRAM reads, results
/// accumulated locally (the reduction dimension is innermost, so no
/// atomics are needed — paper §2.2).
fn record_spmm_tile(
    t: &mut TileRecorder,
    a: &Csr,
    b: &DenseMatrix,
    out: &mut DenseMatrix,
    tiles: usize,
    tile: usize,
    cfg: &CapstanConfig,
) {
    let f_out = b.cols();
    let b_words = b.rows() * f_out;
    let b_fits = b_words <= cfg.spmu.capacity_words();
    // The dense operand is loaded on-chip once (multicast), so each tile
    // accounts a 1/tiles share of its stream.
    t.dram_stream_read(b_words * 4 / tiles.max(1));
    let mut tile_rows = 0usize;
    let mut col_ptrs: Vec<u32> = Vec::new();
    for r in round_robin(a.rows(), tiles, tile) {
        tile_rows += 1;
        let cols = a.row_cols(r);
        let vals = a.row_values(r);
        col_ptrs.extend_from_slice(cols);
        for (&j, &aij) in cols.iter().zip(vals) {
            if b_fits {
                // Row fetch of B[j]: random base address, consecutive
                // words — hashed banking spreads it across all banks.
                let base = (j as usize * f_out) as u32;
                t.foreach_vec(f_out, |t, k| {
                    t.sram_read(base + k as u32);
                    out.row_mut(r)[k] += aij * b.row(j as usize)[k];
                });
            } else {
                // B spills to DRAM: one burst-granular row fetch per
                // neighbor at its real row-major offset, compute on the
                // streamed row.
                let row_word = j as u64 * f_out as u64;
                for b in 0..((f_out * 4) as u64).div_ceil(64) {
                    t.dram_random_read_at(row_word + b * 16);
                }
                t.foreach_vec(f_out, |_, k| {
                    out.row_mut(r)[k] += aij * b.row(j as usize)[k];
                });
            }
        }
    }
    let tile_nnz = col_ptrs.len();
    // Adjacency streams: row lengths + column pointers (compressible,
    // §3.4) + values.
    t.dram_stream_read(tile_rows * 4);
    t.dram_pointer_read(&col_ptrs);
    t.dram_stream_read(tile_nnz * 4);
    // Output rows stream back.
    t.dram_stream_write(tile_rows * f_out * 4);
}

fn spmm_reference(a: &Csr, b: &DenseMatrix) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for (j, aij) in a.row(r) {
            let brow = b.row(j as usize);
            let orow = out.row_mut(r);
            for k in 0..brow.len() {
                orow[k] += aij * brow[k];
            }
        }
    }
    out
}

/// A graph-convolution layer `H' = relu(Â · (H · W))` fusing a dense GEMM
/// with an SpMM in one streaming pipeline.
///
/// # Example
///
/// ```
/// use capstan_apps::gnn::GcnLayer;
/// use capstan_core::config::CapstanConfig;
/// use capstan_tensor::gen;
///
/// let graph = gen::power_law(400, 2400, 2.1, 3);
/// let layer = GcnLayer::with_synthetic(&graph, 16, 8);
/// let (workload, activations) = layer.record(&CapstanConfig::paper_default());
/// assert_eq!(activations.rows(), 400);
/// assert!(activations.as_slice().iter().all(|&v| v >= 0.0)); // ReLU
/// assert!(!workload.tiles.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct GcnLayer {
    adj: Csr,
    features: DenseMatrix,
    weights: DenseMatrix,
}

impl GcnLayer {
    /// Builds the layer from a raw graph: the adjacency is augmented with
    /// self-loops and row-normalized (`Â = D⁻¹(A + I)`, the standard GCN
    /// propagation matrix).
    ///
    /// # Panics
    ///
    /// Panics if the graph is not square, `features.rows()` does not match
    /// the node count, or `weights.rows() != features.cols()`.
    pub fn new(graph: &Coo, features: DenseMatrix, weights: DenseMatrix) -> Self {
        assert_eq!(graph.rows(), graph.cols(), "adjacency must be square");
        assert_eq!(features.rows(), graph.rows(), "one feature row per node");
        assert_eq!(
            weights.rows(),
            features.cols(),
            "weight rows must match feature dim"
        );
        GcnLayer {
            adj: normalized_adjacency(graph),
            features,
            weights,
        }
    }

    /// Builds the layer with deterministic synthetic features and weights
    /// (`f_in` input features, `f_out` output features).
    pub fn with_synthetic(graph: &Coo, f_in: usize, f_out: usize) -> Self {
        let n = graph.rows();
        // Bounded, sign-varying values: ReLU clips a meaningful fraction.
        let features = DenseMatrix::from_fn(n, f_in, |r, c| {
            (((r * 31 + c * 17) % 13) as Value - 6.0) / 6.0
        });
        let weights = DenseMatrix::from_fn(f_in, f_out, |r, c| {
            (((r * 7 + c * 29) % 11) as Value - 5.0) / 5.0
        });
        GcnLayer::new(graph, features, weights)
    }

    /// The normalized propagation matrix `Â`.
    pub fn adjacency(&self) -> &Csr {
        &self.adj
    }

    /// Number of output features per node.
    pub fn output_features(&self) -> usize {
        self.weights.cols()
    }

    /// CPU reference forward pass.
    pub fn reference(&self) -> DenseMatrix {
        let xw = gemm_reference(&self.features, &self.weights);
        let mut out = spmm_reference(&self.adj, &xw);
        relu(&mut out);
        out
    }

    /// Records the fused Capstan execution: GEMM → SpMM → ReLU as one
    /// streaming pipeline with the intermediate `X·W` SRAM-resident.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, DenseMatrix) {
        self.record_inner(cfg, true)
    }

    /// Records the *unfused* execution for the fusion study: the GEMM
    /// writes `X·W` to DRAM and the SpMM reads it back, the way a
    /// kernel-by-kernel library (cuSparse + cuBLAS) runs the layer.
    pub fn record_unfused(&self, cfg: &CapstanConfig) -> (Workload, DenseMatrix) {
        self.record_inner(cfg, false)
    }

    fn record_inner(&self, cfg: &CapstanConfig, fused: bool) -> (Workload, DenseMatrix) {
        let tiles = cfg.effective_outer_par(1);
        let n = self.adj.rows();
        let f_in = self.features.cols();
        let f_out = self.weights.cols();
        let name = if fused {
            "GCN layer"
        } else {
            "GCN layer (unfused)"
        };
        let mut wl = WorkloadBuilder::for_config(name, cfg);
        // The pipeline runs GEMM and SpMM stages concurrently on separate
        // CUs (inter-CU streaming parallelism, paper §4.1).
        wl.set_cus_per_pipeline(2);
        let xw = gemm_reference(&self.features, &self.weights);
        let mut out = DenseMatrix::zeros(n, f_out);
        for tile in 0..tiles {
            let mut t = wl.tile();
            // --- Stage 1: dense GEMM over this tile's feature rows.
            let mut tile_rows = 0usize;
            for _r in round_robin(n, tiles, tile) {
                tile_rows += 1;
                // f_out dot products of length f_in, fully vectorized.
                t.foreach_vec(f_in * f_out, |_, _| {});
            }
            // Features stream in once; weights are broadcast (negligible).
            t.dram_stream_read(tile_rows * f_in * 4);
            if !fused {
                // Kernel boundary: X·W round-trips through DRAM.
                t.dram_stream_write(tile_rows * f_out * 4);
                t.dram_stream_read(n * f_out * 4 / tiles.max(1));
            }
            // --- Stage 2: SpMM over the normalized adjacency.
            record_spmm_tile(&mut t, &self.adj, &xw, &mut out, tiles, tile, cfg);
            // --- Stage 3: ReLU on the way out (free: fused into the
            // writeback map stage; the traffic is already recorded).
            for r in round_robin(n, tiles, tile) {
                let row = out.row_mut(r);
                t.foreach_vec(row.len(), |_, k| row[k] = row[k].max(0.0));
            }
            wl.commit(t);
        }
        (wl.finish(), out)
    }
}

impl App for GcnLayer {
    fn name(&self) -> &'static str {
        "GCN layer"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

/// Row-normalized adjacency with self-loops: `Â = D⁻¹(A + I)`.
fn normalized_adjacency(graph: &Coo) -> Csr {
    let n = graph.rows();
    let mut entries: Vec<(u32, u32, Value)> = Vec::with_capacity(graph.nnz() + n);
    // A + I with unit edge weights (GCN propagation ignores edge values).
    for (r, c, _) in graph.iter() {
        if r != c {
            entries.push((r, c, 1.0));
        }
    }
    for i in 0..n as u32 {
        entries.push((i, i, 1.0));
    }
    let mut degree = vec![0usize; n];
    for &(r, _, _) in &entries {
        degree[r as usize] += 1;
    }
    for e in &mut entries {
        e.2 /= degree[e.0 as usize] as Value;
    }
    Csr::from_coo(&Coo::from_triplets(n, n, entries).expect("valid triplets"))
}

fn gemm_reference(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let mut out = DenseMatrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        let arow = a.row(r);
        let orow = out.row_mut(r);
        for (j, &ajv) in arow.iter().enumerate() {
            let brow = b.row(j);
            for k in 0..brow.len() {
                orow[k] += ajv * brow[k];
            }
        }
    }
    out
}

fn relu(m: &mut DenseMatrix) {
    for r in 0..m.rows() {
        for v in m.row_mut(r) {
            *v = v.max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capstan_tensor::gen;

    fn graph() -> Coo {
        gen::power_law(600, 3600, 2.2, 42)
    }

    fn max_rel_err(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        let num: f64 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b
            .as_slice()
            .iter()
            .map(|y| (*y as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        num / den.max(1e-30)
    }

    #[test]
    fn spmm_matches_reference() {
        let g = graph();
        let b = DenseMatrix::from_fn(g.cols(), 32, |r, c| ((r + c) % 5) as Value - 2.0);
        let app = Spmm::new(&g, b);
        let cfg = CapstanConfig::paper_default();
        let (wl, out) = app.record(&cfg);
        assert!(max_rel_err(&out, &app.reference()) < 1e-5);
        // One random SRAM read per (neighbor, feature) pair when B fits.
        let reads: u64 = wl.tiles.iter().map(|t| t.sram.total_requests).sum();
        assert_eq!(reads, app.a.nnz() as u64 * 32);
    }

    #[test]
    fn spmm_vector_utilization_is_high() {
        // The GNN claim: the feature dimension keeps lanes full even on a
        // power-law graph where PR-Pull would starve (paper Fig. 7).
        let g = graph();
        let b = DenseMatrix::from_fn(g.cols(), 32, |_, _| 1.0);
        let app = Spmm::new(&g, b);
        let cfg = CapstanConfig::paper_default();
        let (wl, _) = app.record(&cfg);
        let lane_work: u64 = wl.tiles.iter().map(|t| t.lane_work).sum();
        let slots: u64 = wl.tiles.iter().map(|t| t.vectors).sum::<u64>() * 16;
        let util = lane_work as f64 / slots as f64;
        assert!(
            util > 0.95,
            "vector utilization {util:.3} should be ~1 with 32 features"
        );
    }

    #[test]
    fn spmm_spills_to_dram_when_b_does_not_fit() {
        let g = gen::uniform(256, 4096, 2048, 7);
        // 4096 rows x 64 features = 256Ki words > 64Ki SpMU words.
        let b = DenseMatrix::from_fn(4096, 64, |_, _| 1.0);
        let app = Spmm::new(&g, b);
        let cfg = CapstanConfig::paper_default();
        let (wl, out) = app.record(&cfg);
        assert!(max_rel_err(&out, &app.reference()) < 1e-5);
        let random: u64 = wl.tiles.iter().map(|t| t.dram_random_words).sum();
        assert!(random > 0, "expected burst-granular DRAM row fetches");
        let sram: u64 = wl.tiles.iter().map(|t| t.sram.total_requests).sum();
        assert_eq!(sram, 0, "spilled SpMM should not record SRAM randoms");
    }

    #[test]
    fn gcn_matches_reference_and_clips() {
        let g = graph();
        let layer = GcnLayer::with_synthetic(&g, 24, 16);
        let cfg = CapstanConfig::paper_default();
        let (_, out) = layer.record(&cfg);
        let reference = layer.reference();
        assert!(max_rel_err(&out, &reference) < 1e-5);
        assert!(
            out.as_slice().iter().all(|&v| v >= 0.0),
            "ReLU output must be non-negative"
        );
        // The synthetic weights straddle zero, so ReLU must actually clip.
        let zeros = out.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0, "expected some clipped activations");
    }

    #[test]
    fn normalized_adjacency_rows_sum_to_one() {
        let g = graph();
        let adj = normalized_adjacency(&g);
        for r in 0..adj.rows() {
            let sum: Value = adj.row_values(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            // Self-loop present.
            assert!(adj.row_cols(r).contains(&(r as u32)));
        }
    }

    #[test]
    fn fusion_saves_the_intermediate_round_trip() {
        let g = graph();
        let layer = GcnLayer::with_synthetic(&g, 24, 16);
        let cfg = CapstanConfig::paper_default();
        let fused: u64 = layer
            .record(&cfg)
            .0
            .tiles
            .iter()
            .map(|t| t.dram_stream_bytes)
            .sum();
        let unfused: u64 = layer
            .record_unfused(&cfg)
            .0
            .tiles
            .iter()
            .map(|t| t.dram_stream_bytes)
            .sum();
        let n = layer.adj.rows() as u64;
        let round_trip = 2 * n * layer.output_features() as u64 * 4;
        assert!(
            unfused >= fused + round_trip,
            "unfused {unfused} should exceed fused {fused} by the X·W round trip {round_trip}"
        );
    }

    #[test]
    fn fused_layer_is_faster_end_to_end() {
        let g = graph();
        let layer = GcnLayer::with_synthetic(&g, 24, 16);
        // DDR4 makes the saved DRAM round-trip visible in cycles.
        let cfg = CapstanConfig::new(capstan_core::config::MemoryKind::Ddr4);
        let fused = capstan_core::perf::simulate(&layer.record(&cfg).0, &cfg);
        let unfused = capstan_core::perf::simulate(&layer.record_unfused(&cfg).0, &cfg);
        assert!(
            fused.cycles <= unfused.cycles,
            "fused {} should not be slower than unfused {}",
            fused.cycles,
            unfused.cycles
        );
    }

    #[test]
    fn empty_graph_layer_is_valid() {
        let g = Coo::zeros(32, 32);
        let layer = GcnLayer::with_synthetic(&g, 8, 8);
        let cfg = CapstanConfig::paper_default();
        let report = layer.simulate(&cfg);
        assert!(report.cycles >= 1);
        // Self-loops still propagate features through the layer.
        let out = layer.reference();
        assert_eq!(out.rows(), 32);
    }
}
