//! Sparse-sparse convolution over pruned CNN layers (paper Table 2).
//!
//! Loop 1 iterates the *non-zero activations* through the data scanner;
//! loop 2 iterates the kernel's non-zeros for that input channel; each
//! pair scatters `Out[oC, r+rK, c+cK] += In[iC, r, c] * K[iC][rK, cK, oC]`
//! with atomic updates. Spatially tiled outputs make the scatter cross
//! tile boundaries ("halo"); Capstan routes those updates through the
//! shuffle network instead of a separate halo-exchange pass (§4, Table 11:
//! "convolution uses the shuffle network to avoid a separate
//! halo-exchange pass. For convolutions with 3x3 kernels, Mrg-0 is up to
//! 15% slower").

use crate::App;
use capstan_core::config::CapstanConfig;
use capstan_core::program::{Workload, WorkloadBuilder};
use capstan_tensor::gen::{ConvLayer, Dataset};
use capstan_tensor::Value;

use capstan_arch::spmu::RmwOp;

/// Sparse convolution of one pruned layer.
#[derive(Debug, Clone)]
pub struct SparseConv {
    layer: ConvLayer,
    /// Route halo updates through DRAM in a separate exchange pass
    /// instead of the shuffle network (the positional-dataflow fallback
    /// the paper measures as far slower, §4 "Convolution Mapping").
    pub halo_via_memory: bool,
}

impl SparseConv {
    /// Wraps a pruned layer.
    pub fn new(layer: ConvLayer) -> Self {
        SparseConv {
            layer,
            halo_via_memory: false,
        }
    }

    /// Generates one of the paper's ResNet-50 layers at the given scale.
    pub fn from_dataset(dataset: Dataset, scale: f64) -> Self {
        SparseConv {
            layer: ConvLayer::generate(dataset, scale),
            halo_via_memory: false,
        }
    }

    /// Output spatial dimension (`dim + kdim - 1`, full correlation).
    pub fn out_dim(&self) -> usize {
        self.layer.dim + self.layer.kdim - 1
    }

    /// CPU reference: dense correlation `Out[oc, r+rk, c+ck] += In * K`.
    pub fn reference(&self) -> Vec<Value> {
        let l = &self.layer;
        let od = self.out_dim();
        let mut out = vec![0.0; l.out_ch * od * od];
        for ic in 0..l.in_ch {
            for r in 0..l.dim {
                for c in 0..l.dim {
                    let x = l.activation(ic, r, c);
                    if x == 0.0 {
                        continue;
                    }
                    for rk in 0..l.kdim {
                        for ck in 0..l.kdim {
                            for oc in 0..l.out_ch {
                                let w = l.kernel_at(ic, rk, ck, oc);
                                if w != 0.0 {
                                    out[(oc * od + r + rk) * od + c + ck] += x * w;
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Records the Capstan execution: output rows are tiled spatially;
    /// halo updates cross to neighbouring tiles via the shuffle network.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, Vec<Value>) {
        let l = &self.layer;
        let od = self.out_dim();
        // Hardware layout pads the spatial plane to a power of two for
        // cheap index arithmetic — which is exactly what makes naive
        // linear banking pathological on Conv's strided accesses (§3.1).
        let od_pad = (od * od).next_power_of_two() as u32;
        let tiles = cfg.effective_outer_par(1).min(l.dim.max(1));
        let rows_per_tile = l.dim.div_ceil(tiles);
        let owner = |out_row: usize| (out_row.min(l.dim - 1)) / rows_per_tile;
        let mut out = vec![0.0; l.out_ch * od * od];
        let mut wl = WorkloadBuilder::for_config("Conv", cfg);

        // Pre-gather the kernel's non-zeros per input channel (the COO
        // kernel format of Table 2).
        let kernel_nnz: Vec<Vec<(usize, usize, usize, Value)>> = (0..l.in_ch)
            .map(|ic| {
                let mut v = Vec::new();
                for rk in 0..l.kdim {
                    for ck in 0..l.kdim {
                        for oc in 0..l.out_ch {
                            let w = l.kernel_at(ic, rk, ck, oc);
                            if w != 0.0 {
                                v.push((rk, ck, oc, w));
                            }
                        }
                    }
                }
                v
            })
            .collect();

        for tile in 0..tiles {
            let r_lo = (tile * rows_per_tile).min(l.dim);
            let r_hi = ((tile + 1) * rows_per_tile).min(l.dim);
            let mut t = wl.tile();
            // Kernel weights and this tile's activation rows stream in.
            let kernel_bytes: usize = kernel_nnz.iter().map(|k| k.len() * 8).sum();
            t.dram_stream_read(kernel_bytes);
            t.dram_stream_read((r_hi - r_lo) * l.dim * l.in_ch * 4);
            for (ic, knz) in kernel_nnz.iter().enumerate() {
                for r in r_lo..r_hi {
                    // Loop 1: non-zero activations via the data scanner.
                    let row_start = (ic * l.dim + r) * l.dim;
                    let row = &l.activations[row_start..row_start + l.dim];
                    t.scan_data_outer(row, |t, c, x| {
                        let c = c as usize;
                        // Loop 2: kernel non-zeros, vectorized.
                        t.foreach_vec(knz.len(), |t, k| {
                            let (rk, ck, oc, w) = knz[k];
                            let (ro, co) = (r + rk, c + ck);
                            let addr = oc as u32 * od_pad + (ro * od + co) as u32;
                            let dest = owner(ro);
                            if dest != tile {
                                if self.halo_via_memory {
                                    // Halo-exchange pass: record the real
                                    // output cell so halo rows coalesce
                                    // under recorded addressing.
                                    t.dram_atomic_at(addr as u64);
                                } else {
                                    // Shuffle network (the output word
                                    // doubles as the fallback address).
                                    t.remote_update_at(dest, addr as u64);
                                }
                            }
                            t.sram_rmw(addr, RmwOp::AddF);
                            out[(oc * od + ro) * od + co] += x * w;
                        });
                    });
                }
            }
            t.dram_stream_write((r_hi - r_lo) * od * l.out_ch * 4);
            wl.commit(t);
        }
        (wl.finish(), out)
    }
}

impl App for SparseConv {
    fn name(&self) -> &'static str {
        "Conv"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::rel_l2_error;

    fn small() -> SparseConv {
        SparseConv::from_dataset(Dataset::ResNet50L2, 0.12)
    }

    #[test]
    fn conv_matches_reference() {
        let app = small();
        let cfg = CapstanConfig::paper_default();
        let (_, out) = app.record(&cfg);
        assert!(rel_l2_error(&out, &app.reference()) < 1e-5);
    }

    #[test]
    fn work_tracks_activation_and_kernel_sparsity() {
        let app = small();
        let cfg = CapstanConfig::paper_default();
        let wl = app.build(&cfg);
        let lane_work: u64 = wl.tiles.iter().map(|t| t.lane_work).sum();
        // lane_work = sum over nonzero activations of their channel's
        // kernel nnz.
        let l = &app.layer;
        let mut expect = 0u64;
        for ic in 0..l.in_ch {
            let knz = (0..l.kdim * l.kdim * l.out_ch)
                .filter(|&i| {
                    let rk = i / (l.kdim * l.out_ch);
                    let ck = (i / l.out_ch) % l.kdim;
                    let oc = i % l.out_ch;
                    l.kernel_at(ic, rk, ck, oc) != 0.0
                })
                .count() as u64;
            for r in 0..l.dim {
                for c in 0..l.dim {
                    if l.activation(ic, r, c) != 0.0 {
                        expect += knz;
                    }
                }
            }
        }
        assert_eq!(lane_work, expect);
    }

    #[test]
    fn halo_updates_cross_tiles_for_3x3() {
        // A slightly larger layer than `small()`: the remote fraction is
        // perimeter/area, so tiny layers sit right at the 50% threshold
        // and flip with the synthetic data stream.
        let app = SparseConv::from_dataset(Dataset::ResNet50L2, 0.25);
        let cfg = CapstanConfig::paper_default();
        let wl = app.build(&cfg);
        let remote: u64 = wl.tiles.iter().map(|t| t.remote.total_entries).sum();
        assert!(remote > 0, "3x3 kernels must produce halo traffic");
        // But locality should dominate: most updates stay in-tile.
        let rmw: u64 = wl.tiles.iter().map(|t| t.sram.rmw_requests).sum();
        assert!(remote * 2 < rmw, "remote {remote} vs total {rmw}");
    }

    #[test]
    fn shuffle_halo_beats_memory_halo() {
        // Paper §4: mapping the halo through memory instead of the
        // shuffle/dynamic network is several times slower.
        let mut app = small();
        let cfg = CapstanConfig::paper_default();
        let fast = app.simulate(&cfg);
        app.halo_via_memory = true;
        let slow = app.simulate(&cfg);
        assert!(
            slow.cycles > fast.cycles,
            "memory halo {} should trail shuffle halo {}",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn one_by_one_kernels_have_no_halo() {
        let app = SparseConv::from_dataset(Dataset::ResNet50L1, 0.12);
        let cfg = CapstanConfig::paper_default();
        let wl = app.build(&cfg);
        let remote: u64 = wl.tiles.iter().map(|t| t.remote.total_entries).sum();
        assert_eq!(remote, 0, "1x1 kernels never cross row tiles");
    }

    #[test]
    fn strided_output_addresses_stress_banking() {
        // Output addresses stride by a power of two per channel: with
        // linear banking this serializes (the paper's Conv pathology,
        // Table 9). More channels sharpen the effect, so test at a
        // larger channel scale than the other tests.
        let app = SparseConv::from_dataset(Dataset::ResNet50L2, 0.25);
        let cfg = CapstanConfig::paper_default();
        let mut linear = cfg;
        linear.spmu.hash = capstan_arch::spmu::BankHash::Linear;
        let hashed_r = app.simulate(&cfg);
        let linear_r = app.simulate(&linear);
        assert!(
            linear_r.cycles > hashed_r.cycles,
            "linear banking {} should trail hashing {}",
            linear_r.cycles,
            hashed_r.cycles
        );
    }
}
