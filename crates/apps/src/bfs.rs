//! Breadth-first search with frontier bitsets (paper Table 2).
//!
//! The paper's mapping: the frontier `Fr[n]` is a bitset iterated by the
//! scanner (loop 1, `sparse(Fr)`); each frontier node's out-edges are a
//! dense inner loop; per edge the SpMU performs the atomic update chain
//! `Ptr[d] = Rch[d] ? Ptr[d] : s` (write-if-memory-zero), `Fr[d] |=
//! !Rch[d]`, `Rch[d] = True` (test-and-set). BFS levels cannot be
//! pipelined — "the on-chip network has a large impact on BFS and SSSP
//! because they cannot be pipelined between iterations" (§4.4) — so every
//! level is a dependent round.

use crate::App;
use capstan_core::config::CapstanConfig;
use capstan_core::program::{Workload, WorkloadBuilder};
use capstan_tensor::bitvec::BitVec;
use capstan_tensor::partition::{partition_graph, Partition};
use capstan_tensor::{Coo, Csr};

use capstan_arch::scanner::ScanMode;
use capstan_arch::spmu::RmwOp;

/// BFS result: hop distances and back-pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Hop count per node (`u32::MAX` = unreachable).
    pub dist: Vec<u32>,
    /// Predecessor per node (`u32::MAX` = none).
    pub parent: Vec<u32>,
}

/// Breadth-first search over a directed graph.
#[derive(Debug, Clone)]
pub struct Bfs {
    adj: Csr,
    source: u32,
    /// Whether back-pointers are written (disabled for the Graphicionado
    /// comparison, paper §4.4: "we use BFS and SSSP variants that do not
    /// write back-pointers").
    pub write_backpointers: bool,
}

impl Bfs {
    /// Builds the benchmark, starting from the highest-out-degree node
    /// (a deterministic, well-connected source).
    pub fn new(graph: &Coo) -> Self {
        let adj = Csr::from_coo(graph);
        let source = (0..adj.rows()).max_by_key(|&v| adj.row_len(v)).unwrap_or(0) as u32;
        Bfs {
            adj,
            source,
            write_backpointers: true,
        }
    }

    /// Builds the benchmark from an explicit source node.
    pub fn from_source(graph: &Coo, source: u32) -> Self {
        Bfs {
            adj: Csr::from_coo(graph),
            source,
            write_backpointers: true,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.adj.rows()
    }

    /// Level-synchronous CPU reference.
    pub fn reference(&self) -> BfsResult {
        let n = self.nodes();
        let mut dist = vec![u32::MAX; n];
        let mut parent = vec![u32::MAX; n];
        if n == 0 {
            return BfsResult { dist, parent };
        }
        dist[self.source as usize] = 0;
        let mut frontier = vec![self.source];
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &s in &frontier {
                for (d, _) in self.adj.row(s as usize) {
                    if dist[d as usize] == u32::MAX {
                        dist[d as usize] = level;
                        parent[d as usize] = s;
                        next.push(d);
                    }
                }
            }
            frontier = next;
        }
        BfsResult { dist, parent }
    }

    fn partition(&self, tiles: usize) -> Partition {
        partition_graph(&self.adj, tiles)
    }

    /// Records the Capstan execution (all levels).
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, BfsResult) {
        let tiles = cfg.effective_outer_par(1);
        let part = self.partition(tiles);
        let n = self.nodes();
        let mut dist = vec![u32::MAX; n];
        let mut parent = vec![u32::MAX; n];
        let mut wl = WorkloadBuilder::for_config("BFS", cfg);
        if n == 0 {
            return (wl.finish(), BfsResult { dist, parent });
        }
        dist[self.source as usize] = 0;

        // Precompute the per-level frontiers (level-synchronous), then
        // replay each tile's share of every level into its recorder.
        let mut levels: Vec<Vec<u32>> = vec![vec![self.source]];
        {
            let mut current = vec![self.source];
            let mut level = 0u32;
            while !current.is_empty() {
                level += 1;
                let mut next = Vec::new();
                for &s in &current {
                    for (d, _) in self.adj.row(s as usize) {
                        if dist[d as usize] == u32::MAX {
                            dist[d as usize] = level;
                            parent[d as usize] = s;
                            next.push(d);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                levels.push(next.clone());
                current = next;
            }
        }

        for tile in 0..tiles {
            let mut t = wl.tile();
            // Graph structure and state arrays stream in once.
            let owned = part.members()[tile].len();
            let tile_edges: usize = part.members()[tile]
                .iter()
                .map(|&v| self.adj.row_len(v as usize))
                .sum();
            t.dram_stream_read(owned * 8 + tile_edges * 4);
            t.dram_stream_write(owned * 8); // dist + ptr write-back
            for frontier in &levels {
                // This tile's slice of the frontier as a bitset.
                let local: Vec<u32> = frontier
                    .iter()
                    .copied()
                    .filter(|&v| part.part_of(v as usize) == tile)
                    .collect();
                let mut bits = BitVec::zeros(n);
                for &v in &local {
                    bits.set(v as usize, true);
                }
                t.convert_pointers(local.len());
                t.scan_outer(ScanMode::Union, &bits, None, |t, e| {
                    let s = e.j;
                    let dsts = self.adj.row_cols(s as usize);
                    t.foreach_vec(dsts.len(), |t, k| {
                        let d = dsts[k];
                        let owner = part.part_of(d as usize);
                        if owner != tile {
                            t.remote_update_at(owner, d as u64);
                        }
                        t.sram_rmw(d, RmwOp::TestAndSet); // Rch[d]
                        if self.write_backpointers {
                            t.sram_rmw(d + n as u32, RmwOp::WriteIfZero); // Ptr[d]
                        }
                        t.sram_rmw(d + 2 * n as u32, RmwOp::Or); // Fr[d] |=
                    });
                });
            }
            wl.commit(t);
        }
        wl.set_dependent_rounds(levels.len() as u64);
        (wl.finish(), BfsResult { dist, parent })
    }
}

impl App for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capstan_tensor::gen::Dataset;

    fn road() -> Coo {
        Dataset::UsRoads.generate_scaled(0.01)
    }

    #[test]
    fn distances_match_reference() {
        let g = road();
        let app = Bfs::new(&g);
        let cfg = CapstanConfig::paper_default();
        let (_, result) = app.record(&cfg);
        let reference = app.reference();
        assert_eq!(result.dist, reference.dist);
        // Parents may differ in tie-breaking order across valid BFS trees,
        // but every parent must be exactly one hop closer.
        for (v, &p) in result.parent.iter().enumerate() {
            if p != u32::MAX {
                assert_eq!(result.dist[v], result.dist[p as usize] + 1);
            }
        }
    }

    #[test]
    fn rounds_equal_bfs_levels() {
        let g = road();
        let app = Bfs::new(&g);
        let cfg = CapstanConfig::paper_default();
        let (wl, result) = app.record(&cfg);
        let max_level = result
            .dist
            .iter()
            .filter(|&&d| d != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0);
        assert_eq!(wl.dependent_rounds, max_level as u64 + 1);
        assert!(
            wl.dependent_rounds > 3,
            "road graphs should have many levels"
        );
    }

    #[test]
    fn every_reached_edge_does_rmw_updates() {
        let g = road();
        let app = Bfs::new(&g);
        let cfg = CapstanConfig::paper_default();
        let (wl, result) = app.record(&cfg);
        // Edges out of reached nodes are each visited exactly once.
        let visited_edges: usize = (0..app.nodes())
            .filter(|&v| result.dist[v] != u32::MAX)
            .map(|v| app.adj.row_len(v))
            .sum();
        let rmws: u64 = wl.tiles.iter().map(|t| t.sram.rmw_requests).sum();
        assert_eq!(rmws, visited_edges as u64 * 3);
    }

    #[test]
    fn backpointer_free_variant_does_less_work() {
        let g = road();
        let mut app = Bfs::new(&g);
        let cfg = CapstanConfig::paper_default();
        let full: u64 = app
            .build(&cfg)
            .tiles
            .iter()
            .map(|t| t.sram.rmw_requests)
            .sum();
        app.write_backpointers = false;
        let lean: u64 = app
            .build(&cfg)
            .tiles
            .iter()
            .map(|t| t.sram.rmw_requests)
            .sum();
        assert!(lean < full);
    }

    #[test]
    fn empty_graph_is_handled() {
        let app = Bfs::from_source(&Coo::zeros(0, 0), 0);
        let cfg = CapstanConfig::paper_default();
        let (wl, result) = app.record(&cfg);
        assert!(result.dist.is_empty());
        assert_eq!(wl.dependent_rounds, 0);
    }
}
