//! Sparse matrix addition ("M+M", paper Table 2) with bit-tree rows.
//!
//! Matrix addition iterates the *union* of two compressed rows. At the
//! paper's M+M densities (circuit matrices, ~0.01-0.2%), flat bit-vectors
//! would mostly scan zeros, so the rows use the two-level **bit-tree**
//! format: "bit-vector sparsity begins to break down when applied to
//! extremely sparse problems ... For such problems, sparse iteration can
//! be nested to support the bit-tree format" (§2.3). This is the paper's
//! most scanner-sensitive app (Fig. 6a: "even scanning 128 bits would
//! slow M+M by 21%, so we scan 256 bits per cycle").

use crate::App;
use capstan_core::config::CapstanConfig;
use capstan_core::program::{Workload, WorkloadBuilder};
use capstan_tensor::bittree::BitTree;
use capstan_tensor::{Coo, Csr, Index, Value};

use capstan_arch::scanner::ScanMode;

/// Sparse matrix addition `C = A + B` over CSR-bit-tree rows.
#[derive(Debug, Clone)]
pub struct MatrixAdd {
    a: Csr,
    b: Csr,
}

impl MatrixAdd {
    /// Creates the benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn new(a: &Coo, b: &Coo) -> Self {
        assert_eq!(a.rows(), b.rows(), "row mismatch");
        assert_eq!(a.cols(), b.cols(), "col mismatch");
        MatrixAdd {
            a: Csr::from_coo(a),
            b: Csr::from_coo(b),
        }
    }

    /// Builds the paper's pairing: the dataset matrix plus a structurally
    /// shifted copy of itself (a deterministic second operand with
    /// overlapping and non-overlapping entries).
    pub fn self_shifted(m: &Coo) -> Self {
        let cols = m.cols();
        let shifted: Vec<(Index, Index, Value)> = m
            .iter()
            .map(|(r, c, v)| (r, (c as usize + 1).min(cols - 1) as Index, v * 0.5))
            .collect();
        let b = Coo::from_triplets(m.rows(), cols, shifted).expect("shift stays in bounds");
        MatrixAdd::new(m, &b)
    }

    /// CPU reference: `C = A + B`.
    pub fn reference(&self) -> Coo {
        let mut triplets: Vec<(Index, Index, Value)> = Vec::new();
        for r in 0..self.a.rows() {
            for (c, v) in self.a.row(r) {
                triplets.push((r as Index, c, v));
            }
            for (c, v) in self.b.row(r) {
                triplets.push((r as Index, c, v));
            }
        }
        Coo::from_triplets(self.a.rows(), self.a.cols(), triplets).expect("valid result")
    }

    /// Records the Capstan execution.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, Coo) {
        let tiles = cfg.effective_outer_par(2);
        let rows = self.a.rows();
        let cols = self.a.cols();
        let mut wl = WorkloadBuilder::for_config("M+M", cfg);
        // Nested scanning uses a scanner-only CU feeding a compute CU
        // (paper §3.3).
        wl.set_cus_per_pipeline(2);
        let mut triplets: Vec<(Index, Index, Value)> = Vec::new();
        for tile in 0..tiles {
            let mut t = wl.tile();
            let mut tile_nnz = 0usize;
            for r in crate::common::round_robin(rows, tiles, tile) {
                let a_cols = self.a.row_cols(r);
                let b_cols = self.b.row_cols(r);
                let a_vals = self.a.row_values(r);
                let b_vals = self.b.row_values(r);
                tile_nnz += a_cols.len() + b_cols.len();
                let a_tree = BitTree::from_indices(cols, a_cols).expect("cols fit bit-tree");
                let b_tree = BitTree::from_indices(cols, b_cols).expect("cols fit bit-tree");
                t.scan_bittree(ScanMode::Union, &a_tree, &b_tree, |_, pos| {
                    let av = match a_cols.binary_search(&pos) {
                        Ok(i) => a_vals[i],
                        Err(_) => 0.0,
                    };
                    let bv = match b_cols.binary_search(&pos) {
                        Ok(i) => b_vals[i],
                        Err(_) => 0.0,
                    };
                    triplets.push((r as Index, pos, av + bv));
                });
            }
            // Row bit-trees and values stream in; the output row streams
            // out (C[r].end prefix sums ride along).
            t.dram_stream_read(tile_nnz * 8);
            t.dram_stream_write(tile_nnz * 8);
            wl.commit(t);
        }
        let c = Coo::from_triplets(rows, cols, triplets).expect("valid output");
        (wl.finish(), c)
    }
}

impl App for MatrixAdd {
    fn name(&self) -> &'static str {
        "M+M"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capstan_tensor::gen::Dataset;

    fn small() -> MatrixAdd {
        MatrixAdd::self_shifted(&Dataset::Ckt11752.generate_scaled(0.02))
    }

    #[test]
    fn sum_matches_reference() {
        let app = small();
        let cfg = CapstanConfig::paper_default();
        let (_, c) = app.record(&cfg);
        let reference = app.reference();
        assert_eq!(c.nnz(), reference.nnz());
        for (x, y) in c.iter().zip(reference.iter()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
            assert!((x.2 - y.2).abs() < 1e-6);
        }
    }

    #[test]
    fn emits_union_cardinality() {
        let app = small();
        let cfg = CapstanConfig::paper_default();
        let (wl, c) = app.record(&cfg);
        let emitted: u64 = wl.tiles.iter().map(|t| t.scan_emitted).sum();
        // Union size = output nnz (cancellation to exact zero is possible
        // but the generators avoid it).
        assert_eq!(emitted, c.nnz() as u64);
    }

    #[test]
    fn uses_two_cus_per_pipeline() {
        let app = small();
        let cfg = CapstanConfig::paper_default();
        let wl = app.build(&cfg);
        assert_eq!(wl.cus_per_pipeline, 2);
        let report = app.simulate(&cfg);
        assert_eq!(report.pipelines, cfg.effective_outer_par(2));
    }

    #[test]
    fn scanner_dominated_profile() {
        // M+M has no random SRAM traffic: the scanner is the story.
        let app = small();
        let cfg = CapstanConfig::paper_default();
        let wl = app.build(&cfg);
        let sram: u64 = wl.tiles.iter().map(|t| t.sram.total_requests).sum();
        assert_eq!(sram, 0);
        let scan: u64 = wl.tiles.iter().map(|t| t.scan_cycles).sum();
        assert!(scan > 0);
    }

    #[test]
    fn narrow_scanner_hurts_mpm() {
        // Fig. 6a: M+M slows substantially with a narrow bit scanner.
        let app = small();
        let wide = CapstanConfig::paper_default();
        let mut narrow = wide;
        narrow.scanner = capstan_arch::scanner::BitVecScanner::new(16, 16);
        let fast = app.simulate(&wide);
        let slow = app.simulate(&narrow);
        assert!(
            slow.cycles > fast.cycles,
            "narrow {} should exceed wide {}",
            slow.cycles,
            fast.cycles
        );
    }
}
