//! PageRank in pull and edge-centric variants (paper Table 2's PR-Pull /
//! PR-Edge).
//!
//! "PRPull suffers from under-vectorization because many graph vertices
//! have very few in-edges. However, PREdge suffers from SRAM conflicts on
//! datasets which have a power-law distribution, where some vertices have
//! many in-edges that cannot be coalesced. Therefore, it is important to
//! be able to choose between pull and edge-based execution." (paper §4.4)

use crate::common::inv_out_degree;
use crate::App;
use capstan_core::config::CapstanConfig;
use capstan_core::program::{Workload, WorkloadBuilder};
use capstan_tensor::partition::{partition_graph, Partition};
use capstan_tensor::{Coo, Csr, Value};

use capstan_arch::spmu::RmwOp;

/// Damping factor used by both variants.
pub const DAMPING: Value = 0.85;

fn initial_rank(n: usize) -> Vec<Value> {
    vec![1.0 / n.max(1) as Value; n]
}

/// One pull-based PageRank iteration on the CPU (reference).
pub fn reference_iteration(in_adj: &Csr, inv_deg: &[Value], rank: &[Value]) -> Vec<Value> {
    let n = in_adj.rows();
    (0..n)
        .map(|v| {
            let pulled: Value = in_adj
                .row(v)
                .map(|(s, _)| rank[s as usize] * inv_deg[s as usize])
                .sum();
            (1.0 - DAMPING) / n as Value + DAMPING * pulled
        })
        .collect()
}

/// Pull-based PageRank: each node gathers `rank[s] / outdeg[s]` over its
/// in-edges (dense node loop, dense in-edge inner loop, random reads).
#[derive(Debug, Clone)]
pub struct PrPull {
    /// In-edge adjacency (rows = destinations).
    in_adj: Csr,
    /// Out-edge adjacency (for degrees and partitioning).
    out_adj: Csr,
    inv_deg: Vec<Value>,
}

impl PrPull {
    /// Builds the benchmark from a directed edge list.
    pub fn new(graph: &Coo) -> Self {
        let out_adj = Csr::from_coo(graph);
        let in_adj = Csr::from_coo(&graph.transpose());
        let inv_deg = inv_out_degree(&out_adj);
        PrPull {
            in_adj,
            out_adj,
            inv_deg,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.in_adj.rows()
    }

    /// CPU reference: one iteration from the uniform initial rank.
    pub fn reference(&self) -> Vec<Value> {
        reference_iteration(&self.in_adj, &self.inv_deg, &initial_rank(self.nodes()))
    }

    fn partition(&self, tiles: usize) -> Partition {
        partition_graph(&self.out_adj, tiles)
    }

    /// Records one Capstan iteration.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, Vec<Value>) {
        let tiles = cfg.effective_outer_par(1);
        let part = self.partition(tiles);
        let n = self.nodes();
        let rank = initial_rank(n);
        let mut new_rank = vec![0.0; n];
        let mut wl = WorkloadBuilder::for_config("PR-Pull", cfg);
        let members = part.members();
        for (tile, nodes) in members.iter().enumerate() {
            let mut t = wl.tile();
            let mut tile_edges = 0usize;
            // Stream this tile's adjacency and its rank slice.
            for &v in nodes {
                let v = v as usize;
                let srcs = self.in_adj.row_cols(v);
                tile_edges += srcs.len();
                let mut pulled = 0.0;
                t.foreach_vec(srcs.len(), |t, k| {
                    let s = srcs[k] as usize;
                    t.sram_read(srcs[k]); // rank[s] (local copy)
                    if part.part_of(s) != tile {
                        // Record the remote word (the source vertex) so
                        // the shuffle-less DRAM-atomic fallback can
                        // replay the real hub-skewed destinations.
                        t.remote_update_at(part.part_of(s), s as u64);
                    }
                    pulled += rank[s] * self.inv_deg[s];
                });
                new_rank[v] = (1.0 - DAMPING) / n as Value + DAMPING * pulled;
            }
            let srcs_stream: Vec<u32> = nodes
                .iter()
                .flat_map(|&v| self.in_adj.row_cols(v as usize).iter().copied())
                .collect();
            t.dram_pointer_read(&srcs_stream);
            t.dram_stream_read(nodes.len() * 8); // row pointers + degrees
            t.dram_stream_write(nodes.len() * 4);
            let _ = tile_edges;
            wl.commit(t);
        }
        (wl.finish(), new_rank)
    }
}

impl App for PrPull {
    fn name(&self) -> &'static str {
        "PR-Pull"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

/// Edge-centric PageRank: iterate all edges, read `rank[src]`, atomically
/// accumulate into `acc[dst]` (COO-style, paper Table 2's PR-Edge).
#[derive(Debug, Clone)]
pub struct PrEdge {
    edges: Coo,
    out_adj: Csr,
    inv_deg: Vec<Value>,
}

impl PrEdge {
    /// Builds the benchmark from a directed edge list.
    pub fn new(graph: &Coo) -> Self {
        let out_adj = Csr::from_coo(graph);
        let inv_deg = inv_out_degree(&out_adj);
        PrEdge {
            edges: graph.clone(),
            out_adj,
            inv_deg,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.edges.rows()
    }

    /// CPU reference: one iteration (identical math to PR-Pull).
    pub fn reference(&self) -> Vec<Value> {
        let n = self.nodes();
        let rank = initial_rank(n);
        let mut acc = vec![0.0; n];
        for (s, d, _) in self.edges.iter() {
            acc[d as usize] += rank[s as usize] * self.inv_deg[s as usize];
        }
        acc.iter()
            .map(|a| (1.0 - DAMPING) / n as Value + DAMPING * a)
            .collect()
    }

    /// Records one Capstan iteration.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, Vec<Value>) {
        let tiles = cfg.effective_outer_par(1);
        let part = partition_graph(&self.out_adj, tiles);
        let n = self.nodes();
        let rank = initial_rank(n);
        let mut acc = vec![0.0; n];
        // Edges grouped by the owner of their destination (accumulator
        // stays tile-local; rank reads may cross tiles).
        let mut edges_by_tile: Vec<Vec<(u32, u32, Value)>> = vec![Vec::new(); tiles];
        for (s, d, w) in self.edges.iter() {
            edges_by_tile[part.part_of(d as usize)].push((s, d, w));
        }
        let mut wl = WorkloadBuilder::for_config("PR-Edge", cfg);
        for (tile, edges) in edges_by_tile.iter().enumerate() {
            let mut t = wl.tile();
            // Source and destination pointer streams compress well
            // ("PREdge and COO see the best compression speedups because
            // they load two pointers for every data element", Fig. 5c).
            let srcs: Vec<u32> = edges.iter().map(|e| e.0).collect();
            let dsts: Vec<u32> = edges.iter().map(|e| e.1).collect();
            t.dram_pointer_read(&srcs);
            t.dram_pointer_read(&dsts);
            t.foreach_vec(edges.len(), |t, k| {
                let (s, d, _) = edges[k];
                t.sram_read(s); // rank[src]
                if part.part_of(s as usize) != tile {
                    // Power-law hubs repeat here; recording the real
                    // source vertex lets the cycle-level memory mode's
                    // recorded-address replay coalesce them in the AGs.
                    t.remote_update_at(part.part_of(s as usize), s as u64);
                }
                t.sram_rmw(d, RmwOp::AddF); // acc[dst] +=
                acc[d as usize] += rank[s as usize] * self.inv_deg[s as usize];
            });
            // Apply phase over owned nodes.
            let owned: Vec<u32> = part.members()[tile].clone();
            t.foreach_vec(owned.len(), |_, _| {});
            t.dram_stream_write(owned.len() * 4);
            wl.commit(t);
        }
        let new_rank = acc
            .iter()
            .map(|a| (1.0 - DAMPING) / n as Value + DAMPING * a)
            .collect();
        (wl.finish(), new_rank)
    }
}

impl App for PrEdge {
    fn name(&self) -> &'static str {
        "PR-Edge"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::rel_l2_error;
    use capstan_tensor::gen::Dataset;

    fn road() -> Coo {
        Dataset::UsRoads.generate_scaled(0.02)
    }

    fn web() -> Coo {
        Dataset::WebStanford.generate_scaled(0.01)
    }

    #[test]
    fn pull_matches_reference() {
        let g = road();
        let app = PrPull::new(&g);
        let cfg = CapstanConfig::paper_default();
        let (wl, rank) = app.record(&cfg);
        assert!(rel_l2_error(&rank, &app.reference()) < 1e-5);
        // Each edge costs one random rank read.
        let reads: u64 = wl.tiles.iter().map(|t| t.sram.total_requests).sum();
        assert_eq!(reads, g.nnz() as u64);
    }

    #[test]
    fn edge_matches_pull_semantics() {
        let g = web();
        let pull = PrPull::new(&g);
        let edge = PrEdge::new(&g);
        let cfg = CapstanConfig::paper_default();
        let (_, r_pull) = pull.record(&cfg);
        let (_, r_edge) = edge.record(&cfg);
        assert!(rel_l2_error(&r_edge, &r_pull) < 1e-5);
    }

    #[test]
    fn pull_undervectorizes_on_low_degree_graphs() {
        // Road networks have ~2.6 in-edges per node: most vectors are
        // nearly empty (paper §4.4).
        let g = road();
        let app = PrPull::new(&g);
        let cfg = CapstanConfig::paper_default();
        let wl = app.build(&cfg);
        let lane_work: u64 = wl.tiles.iter().map(|t| t.lane_work).sum();
        let vectors: u64 = wl.tiles.iter().map(|t| t.vectors).sum();
        let fill = lane_work as f64 / (vectors * 16) as f64;
        assert!(fill < 0.4, "vector fill {fill:.2} should be poor on roads");
    }

    #[test]
    fn edge_variant_hammers_hot_accumulators() {
        // Power-law graphs concentrate updates on hub destinations.
        let g = web();
        let app = PrEdge::new(&g);
        let cfg = CapstanConfig::paper_default();
        let wl = app.build(&cfg);
        let rmws: u64 = wl.tiles.iter().map(|t| t.sram.rmw_requests).sum();
        assert_eq!(rmws, g.nnz() as u64);
        // And it records compressible pointer traffic.
        assert!(wl.tiles.iter().any(|t| t.dram_compressible_bytes > 0));
    }

    #[test]
    fn partitioning_keeps_most_reads_local() {
        let g = road();
        let app = PrPull::new(&g);
        let cfg = CapstanConfig::paper_default();
        let wl = app.build(&cfg);
        let remote: u64 = wl.tiles.iter().map(|t| t.remote.total_entries).sum();
        let total: u64 = wl.tiles.iter().map(|t| t.sram.total_requests).sum();
        assert!(
            remote * 2 < total,
            "remote {remote} of {total} reads — partition locality failed"
        );
    }
}
