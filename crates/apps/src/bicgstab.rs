//! Stabilized biconjugate gradient solver (BiCGStab, van der Vorst 1992).
//!
//! The paper's kernel-fusion showcase (§4.4): "this is a linear least
//! squares solver that combines sparse matrix-vector multiplication and
//! dense dot products. The CPU and GPU baselines implement BiCGStab using
//! sparse and dense kernels; the inter-kernel overhead causes up to a 3x
//! slowdown relative to sparse SpMV alone. However, Capstan (and
//! Plasticine) can fuse these kernels into a streaming pipeline, which
//! lowers memory bandwidth requirements and the latency of each
//! iteration."
//!
//! On Capstan the intermediate vectors stay resident in SpMU SRAM across
//! the fused pipeline: only the matrix streams from DRAM each iteration.

use crate::common::round_robin;
use crate::App;
use capstan_core::config::CapstanConfig;
use capstan_core::program::{TileRecorder, Workload, WorkloadBuilder};
use capstan_tensor::{Coo, Csr, Value};

/// BiCGStab solving `A x = b` for a fixed iteration budget.
#[derive(Debug, Clone)]
pub struct BiCgStab {
    a: Csr,
    b: Vec<Value>,
    /// Solver iterations to record (each is a dependent round).
    pub iterations: usize,
}

/// Result of a solve: the iterate and per-iteration residual norms.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// Final iterate.
    pub x: Vec<Value>,
    /// Residual 2-norm after each iteration.
    pub residuals: Vec<f64>,
}

impl BiCgStab {
    /// Sets up the solver with `b = A * ones` (known solution: all-ones).
    pub fn new(matrix: &Coo) -> Self {
        let a = Csr::from_coo(matrix);
        let ones = vec![1.0; a.cols()];
        let b = a.spmv(&ones);
        BiCgStab {
            a,
            b,
            iterations: 8,
        }
    }

    /// CPU reference solve (identical algorithm, unfused).
    pub fn reference(&self) -> SolveResult {
        self.solve(None)
    }

    /// Records the fused Capstan execution.
    pub fn record(&self, cfg: &CapstanConfig) -> (Workload, SolveResult) {
        let tiles = cfg.effective_outer_par(1);
        let mut wl = WorkloadBuilder::for_config("BiCGStab", cfg);
        wl.set_dependent_rounds(self.iterations as u64);
        // One long-lived recorder per tile; every solver step records
        // its share of the fused pipeline into it.
        let mut recorders: Vec<TileRecorder> = Vec::new();
        for _ in 0..tiles {
            recorders.push(wl.tile());
        }
        // The matrix streams from DRAM once per SpMV; the vectors are
        // SRAM-resident (fusion) and never leave the chip.
        let result = self.solve(Some(&mut recorders));
        for rec in recorders {
            wl.commit(rec);
        }
        (wl.finish(), result)
    }

    /// The BiCGStab algorithm; with `recorders`, each operation also
    /// records its hardware trace (tile-parallel by row blocks).
    fn solve(&self, mut recorders: Option<&mut Vec<TileRecorder>>) -> SolveResult {
        let n = self.a.rows();
        let mut x = vec![0.0f32; n];
        let mut r: Vec<Value> = self.b.clone(); // r0 = b - A*0
        let r_hat = r.clone();
        let (mut rho, mut alpha, mut omega) = (1.0f32, 1.0f32, 1.0f32);
        let mut v = vec![0.0f32; n];
        let mut p = vec![0.0f32; n];
        let mut residuals = Vec::new();

        let dot = |a: &[Value], b: &[Value]| -> Value { a.iter().zip(b).map(|(x, y)| x * y).sum() };

        for _ in 0..self.iterations {
            let rho_new = dot(&r_hat, &r);
            if rho_new.abs() < 1e-30 || omega.abs() < 1e-30 {
                break;
            }
            let beta = (rho_new / rho) * (alpha / omega);
            rho = rho_new;
            for i in 0..n {
                p[i] = r[i] + beta * (p[i] - omega * v[i]);
            }
            v = self.spmv_traced(&p, &mut recorders);
            alpha = rho / dot(&r_hat, &v);
            let s: Vec<Value> = r.iter().zip(&v).map(|(ri, vi)| ri - alpha * vi).collect();
            let t = self.spmv_traced(&s, &mut recorders);
            let tt = dot(&t, &t);
            omega = if tt.abs() < 1e-30 {
                0.0
            } else {
                dot(&t, &s) / tt
            };
            for i in 0..n {
                x[i] += alpha * p[i] + omega * s[i];
            }
            r = s.iter().zip(&t).map(|(si, ti)| si - omega * ti).collect();
            // Dense BLAS1 work: record the fused vector passes (p update,
            // s, x, r, and the dot products ~ 6 passes over n).
            if let Some(recs) = recorders.as_deref_mut() {
                let tiles = recs.len();
                for (tile, rec) in recs.iter_mut().enumerate() {
                    let share = round_robin(n, tiles, tile).count();
                    for _ in 0..6 {
                        rec.foreach_vec(share, |_, _| {});
                    }
                }
            }
            residuals.push(dot(&r, &r).sqrt() as f64);
        }
        SolveResult { x, residuals }
    }

    /// SpMV, optionally recording the CSR traffic per tile.
    fn spmv_traced(
        &self,
        x: &[Value],
        recorders: &mut Option<&mut Vec<TileRecorder>>,
    ) -> Vec<Value> {
        let y = self.a.spmv(x);
        if let Some(recs) = recorders.as_deref_mut() {
            let tiles = recs.len();
            for (tile, rec) in recs.iter_mut().enumerate() {
                let mut tile_nnz = 0usize;
                for row in round_robin(self.a.rows(), tiles, tile) {
                    let cols = self.a.row_cols(row);
                    tile_nnz += cols.len();
                    rec.foreach_vec(cols.len(), |rec, k| {
                        rec.sram_read(cols[k]); // x[c] random read
                    });
                }
                // Fused pipeline: only the matrix streams from DRAM.
                rec.dram_stream_read(tile_nnz * 8);
            }
        }
        y
    }
}

impl App for BiCgStab {
    fn name(&self) -> &'static str {
        "BiCGStab"
    }

    fn build(&self, cfg: &CapstanConfig) -> Workload {
        self.record(cfg).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capstan_tensor::gen::Dataset;

    fn system() -> BiCgStab {
        // Trefethen-style matrices are diagonally dominant: BiCGStab
        // converges quickly.
        let mut solver = BiCgStab::new(&Dataset::Trefethen20000.generate_scaled(0.02));
        solver.iterations = 14;
        solver
    }

    #[test]
    fn converges_on_diagonally_dominant_system() {
        let solver = system();
        let result = solver.reference();
        assert!(!result.residuals.is_empty());
        let first = result.residuals.first().unwrap();
        let last = result.residuals.last().unwrap();
        assert!(last < first, "residual should decrease: {result:?}");
        // Solution approaches all-ones.
        let err: f64 = result
            .x
            .iter()
            .map(|&xi| ((xi - 1.0) as f64).abs())
            .fold(0.0, f64::max);
        assert!(err < 0.1, "max error {err}");
    }

    #[test]
    fn recorded_solve_matches_reference() {
        let solver = system();
        let cfg = CapstanConfig::paper_default();
        let (wl, result) = solver.record(&cfg);
        let reference = solver.reference();
        assert_eq!(result.residuals.len(), reference.residuals.len());
        for (a, b) in result.residuals.iter().zip(&reference.residuals) {
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
        assert_eq!(wl.dependent_rounds, solver.iterations as u64);
    }

    #[test]
    fn fusion_keeps_vectors_on_chip() {
        // DRAM traffic should be dominated by the matrix (streamed twice
        // per iteration), not the dense vectors.
        let solver = system();
        let cfg = CapstanConfig::paper_default();
        let wl = solver.build(&cfg);
        let bytes: u64 = wl.tiles.iter().map(|t| t.dram_stream_bytes).sum();
        let matrix_bytes = solver.a.nnz() as u64 * 8;
        let expected = matrix_bytes * 2 * solver.iterations as u64;
        assert!(
            bytes <= expected + expected / 4,
            "streamed {bytes} vs matrix-only expectation {expected}"
        );
    }

    #[test]
    fn spmv_random_reads_recorded() {
        let solver = system();
        let cfg = CapstanConfig::paper_default();
        let wl = solver.build(&cfg);
        let reads: u64 = wl.tiles.iter().map(|t| t.sram.total_requests).sum();
        // Two SpMVs per iteration, one x-read per nnz.
        assert_eq!(reads, solver.a.nnz() as u64 * 2 * solver.iterations as u64);
    }
}
