//! `capstan-cli` — run one application on one matrix and print the
//! simulated cycle count and stall breakdown.
//!
//! ```text
//! capstan-cli --app csr-spmv --dataset ckt11752 --scale 0.1 --memory hbm2e
//! capstan-cli --app pr-pull --matrix web.mtx --memory ddr4 --compare-plasticine
//! capstan-cli --list
//! ```

use capstan::apps::bfs::Bfs;
use capstan::apps::bicgstab::BiCgStab;
use capstan::apps::cg::ConjugateGradient;
use capstan::apps::conv::SparseConv;
use capstan::apps::gnn::{GcnLayer, Spmm};
use capstan::apps::mpm::MatrixAdd;
use capstan::apps::pagerank::{PrEdge, PrPull};
use capstan::apps::spmspm::SpMSpM;
use capstan::apps::spmv::{BcsrSpmv, CooSpmv, CscSpmv, CsrSpmv, DcsrSpmv};
use capstan::apps::sssp::Sssp;
use capstan::apps::App;
use capstan::baselines::plasticine;
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::tensor::gen::Dataset;
use capstan::tensor::DenseMatrix;
use capstan::tensor::{mm, Coo};
use std::process::ExitCode;

const APPS: &[&str] = &[
    "csr-spmv",
    "coo-spmv",
    "csc-spmv",
    "bcsr-spmv",
    "dcsr-spmv",
    "conv",
    "pr-pull",
    "pr-edge",
    "bfs",
    "sssp",
    "mpm",
    "spmspm",
    "bicgstab",
    "cg",
    "spmm",
    "gcn",
];

const DATASETS: &[(&str, Dataset)] = &[
    ("ckt11752", Dataset::Ckt11752),
    ("trefethen", Dataset::Trefethen20000),
    ("bcsstk30", Dataset::Bcsstk30),
    ("usroads", Dataset::UsRoads),
    ("web-stanford", Dataset::WebStanford),
    ("flickr", Dataset::Flickr),
    ("gnutella", Dataset::Gnutella31),
    ("spacestation", Dataset::SpaceStation4),
    ("qc324", Dataset::Qc324),
    ("mbeacxc", Dataset::Mbeacxc),
    ("resnet-l1", Dataset::ResNet50L1),
    ("resnet-l2", Dataset::ResNet50L2),
    ("resnet-l29", Dataset::ResNet50L29),
];

struct Args {
    app: String,
    matrix: Option<String>,
    dataset: Option<String>,
    scale: f64,
    memory: MemoryKind,
    ordering: Option<String>,
    outer_par: Option<usize>,
    compare_plasticine: bool,
}

fn usage() -> &'static str {
    "capstan-cli: simulate a sparse application on Capstan\n\
     \n\
     USAGE:\n\
       capstan-cli --app <APP> (--matrix <FILE.mtx> | --dataset <NAME>) [OPTIONS]\n\
       capstan-cli --list\n\
     \n\
     OPTIONS:\n\
       --app <APP>             application (see --list)\n\
       --matrix <FILE>         Matrix Market input\n\
       --dataset <NAME>        synthetic Table 6 dataset (see --list)\n\
       --scale <F>             dataset scale in (0,1], default 0.1\n\
       --memory <M>            hbm2e | hbm2 | ddr4 | ideal | <GB/s>, default hbm2e\n\
       --ordering <O>          unordered | address | full | arbitrated\n\
       --outer-par <N>         parallel pipelines (default 32)\n\
       --compare-plasticine    also simulate the Plasticine baseline\n"
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        app: String::new(),
        matrix: None,
        dataset: None,
        scale: 0.1,
        memory: MemoryKind::Hbm2e,
        ordering: None,
        outer_par: None,
        compare_plasticine: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--list" => return Ok(None),
            "--help" | "-h" => return Err(String::new()),
            "--app" => args.app = value("--app")?,
            "--matrix" => args.matrix = Some(value("--matrix")?),
            "--dataset" => args.dataset = Some(value("--dataset")?),
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "bad --scale".to_string())?
            }
            "--memory" => {
                let m = value("--memory")?;
                args.memory = match m.as_str() {
                    "hbm2e" => MemoryKind::Hbm2e,
                    "hbm2" => MemoryKind::Hbm2,
                    "ddr4" => MemoryKind::Ddr4,
                    "ideal" => MemoryKind::Ideal,
                    other => MemoryKind::Custom(
                        other
                            .parse()
                            .map_err(|_| format!("bad --memory `{other}`"))?,
                    ),
                };
            }
            "--ordering" => args.ordering = Some(value("--ordering")?),
            "--outer-par" => {
                args.outer_par = Some(
                    value("--outer-par")?
                        .parse()
                        .map_err(|_| "bad --outer-par".to_string())?,
                )
            }
            "--compare-plasticine" => args.compare_plasticine = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.app.is_empty() {
        return Err("missing --app".to_string());
    }
    Ok(Some(args))
}

fn load_matrix(args: &Args) -> Result<Coo, String> {
    if let Some(path) = &args.matrix {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        return mm::read(std::io::BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"));
    }
    let name = args.dataset.as_deref().unwrap_or("ckt11752");
    let dataset = DATASETS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, d)| *d)
        .ok_or_else(|| format!("unknown dataset `{name}` (try --list)"))?;
    Ok(dataset.generate_scaled(args.scale))
}

fn build_app(args: &Args, m: &Coo) -> Result<Box<dyn App>, String> {
    Ok(match args.app.as_str() {
        "csr-spmv" => Box::new(CsrSpmv::new(m)),
        "coo-spmv" => Box::new(CooSpmv::new(m)),
        "csc-spmv" => Box::new(CscSpmv::new(m)),
        "pr-pull" => Box::new(PrPull::new(m)),
        "pr-edge" => Box::new(PrEdge::new(m)),
        "bfs" => Box::new(Bfs::new(m)),
        "sssp" => Box::new(Sssp::new(m)),
        "mpm" => Box::new(MatrixAdd::self_shifted(m)),
        "spmspm" => Box::new(SpMSpM::squared(m)),
        "bicgstab" => Box::new(BiCgStab::new(m)),
        "bcsr-spmv" => Box::new(BcsrSpmv::new(m, 16)),
        "dcsr-spmv" => Box::new(DcsrSpmv::new(m)),
        "cg" => Box::new(ConjugateGradient::new(m)),
        "spmm" => {
            let b = DenseMatrix::from_fn(m.cols(), 32, |r, c| ((r + c) % 3) as f32 - 1.0);
            Box::new(Spmm::new(m, b))
        }
        "gcn" => {
            if m.rows() != m.cols() {
                return Err("gcn needs a square adjacency matrix".to_string());
            }
            Box::new(GcnLayer::with_synthetic(m, 32, 32))
        }
        "conv" => {
            let ds = match args.dataset.as_deref() {
                Some("resnet-l1") => Dataset::ResNet50L1,
                Some("resnet-l29") => Dataset::ResNet50L29,
                _ => Dataset::ResNet50L2,
            };
            Box::new(SparseConv::from_dataset(ds, args.scale))
        }
        other => return Err(format!("unknown app `{other}` (try --list)")),
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("applications: {}", APPS.join(", "));
            println!(
                "datasets:     {}",
                DATASETS
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let matrix = match load_matrix(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.app != "conv" {
        println!(
            "matrix: {}x{}, {} non-zeros ({:.4}% dense)",
            matrix.rows(),
            matrix.cols(),
            matrix.nnz(),
            matrix.density() * 100.0
        );
    }

    let mut cfg = CapstanConfig::new(args.memory);
    if let Some(par) = args.outer_par {
        cfg.outer_par = par;
    }
    if let Some(ordering) = &args.ordering {
        use capstan::arch::spmu::OrderingMode;
        cfg.spmu.ordering = match ordering.as_str() {
            "unordered" => OrderingMode::Unordered,
            "address" => OrderingMode::AddressOrdered,
            "full" => OrderingMode::FullyOrdered,
            "arbitrated" => OrderingMode::Arbitrated,
            other => {
                eprintln!("error: unknown ordering `{other}`");
                return ExitCode::FAILURE;
            }
        };
    }

    let app = match build_app(&args, &matrix) {
        Ok(app) => app,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = app.simulate(&cfg);
    println!("{report}");
    for (name, frac) in report.breakdown.fractions() {
        let bar = "#".repeat((frac * 40.0).round() as usize);
        println!("  {name:<14} {:>5.1}% {bar}", frac * 100.0);
    }

    if args.compare_plasticine {
        if plasticine::supports(app.name()) {
            let p = app.simulate(&plasticine::config(args.memory));
            println!("\nPlasticine baseline: {p}");
            println!(
                "Capstan speedup: {:.2}x",
                p.cycles as f64 / report.cycles.max(1) as f64
            );
        } else {
            println!("\n({} has no efficient Plasticine mapping)", app.name());
        }
    }
    ExitCode::SUCCESS
}
