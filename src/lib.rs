#![deny(missing_docs)]

//! # Capstan
//!
//! A Rust reproduction of **"Capstan: A Vector RDA for Sparsity"**
//! (Rucker et al., MICRO 2021): a vectorized, reconfigurable dataflow
//! accelerator (RDA) for sparse and dense tensor applications, together
//! with the entire simulation and evaluation stack the paper is built on.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`tensor`] — sparse tensor formats (CSR/CSC/COO, bit-vector,
//!   bit-tree), dataset generators, partitioning.
//! * [`sim`] — simulation kernel: DRAM models, network model, statistics.
//! * [`arch`] — microarchitecture: SpMU (allocated sparse memories),
//!   scanners, shuffle networks, DRAM address generators, area model.
//! * [`core`] — the declarative programming model (`Foreach`/`Scan`) and
//!   the system performance engine with the paper's stall-breakdown
//!   methodology.
//! * [`apps`] — the eleven paper applications (SpMV ×3, Conv, PageRank ×2,
//!   BFS, SSSP, M+M, SpMSpM, BiCGStab).
//! * [`plan`] — the density-driven planner: ranks candidate
//!   (format, memory) configurations from per-dataset statistics.
//! * [`baselines`] — Plasticine, CPU, GPU, and sparse-ASIC baselines.
//!
//! # Quickstart
//!
//! ```
//! use capstan::tensor::gen::Dataset;
//! use capstan::core::config::{CapstanConfig, MemoryKind};
//! use capstan::apps::spmv::CsrSpmv;
//! use capstan::apps::App;
//!
//! // A scaled-down synthetic equivalent of the paper's circuit matrix.
//! let matrix = Dataset::Ckt11752.generate_scaled(0.02);
//! let app = CsrSpmv::new(&matrix);
//! let cfg = CapstanConfig::new(MemoryKind::Hbm2e);
//! let report = app.simulate(&cfg);
//! assert!(report.cycles > 0);
//! ```

pub use capstan_apps as apps;
pub use capstan_arch as arch;
pub use capstan_baselines as baselines;
pub use capstan_core as core;
pub use capstan_plan as plan;
pub use capstan_sim as sim;
pub use capstan_tensor as tensor;
