//! Differential tests between the two memory-timing modes.
//!
//! The cycle-level mode (`MemTiming::CycleLevel`) replays DRAM traffic
//! through a banked channel and a real address generator whose timing
//! parameters are *derived* from the analytic `DramModel`'s efficiency
//! constants, so the two modes must stay coupled: the cycle-level drain
//! can add contention the closed form cannot see (slower is expected),
//! but it must never beat the analytic rate on traffic the closed form
//! prices tightly, and on contention-free streaming the two must agree
//! within a bounded ratio. Atomic traffic additionally must be strictly
//! monotone: more RMW words can never make the cycle-level drain faster.
//!
//! The multi-channel topology (`CapstanConfig::mem_channels`) adds a
//! third axis: one region channel must reproduce the single-channel
//! driver bit-for-bit (the golden pins depend on it), growing the
//! channel count can only shrink the drain on bank-parallel traffic,
//! and the atomic-monotonicity contract must hold at *every* channel
//! count.
//!
//! Recorded addressing (`CapstanConfig::mem_addresses`) adds a fourth:
//! replaying the recorder's real sampled address vectors must conserve
//! word counts, never lose to the uniform synthetic streams on
//! hub-skewed kernels (coalescing can only help), fall back
//! bit-identically when a workload recorded no addresses, and stay
//! bit-reproducible run to run.

use capstan::core::config::{CapstanConfig, MemAddressing, MemTiming, MemoryKind};
use capstan::core::perf::simulate;
use capstan::core::program::{Workload, WorkloadBuilder};
use capstan::core::report::PerfReport;

/// Builds a one-knob DRAM workload: `tiles` tiles, each with the given
/// streaming bytes, random words, and atomic words (plus a little lane
/// work so the recording is well-formed).
fn dram_workload(
    tiles: usize,
    stream_bytes: usize,
    random_words: u64,
    atomic_words: u64,
) -> Workload {
    let mut wl = WorkloadBuilder::new("dram-grid");
    for _ in 0..tiles {
        let mut t = wl.tile();
        t.foreach_vec(256, |_, _| {});
        t.dram_stream_read(stream_bytes);
        t.dram_random_read(random_words);
        t.dram_atomic(atomic_words);
        wl.commit(t);
    }
    wl.finish()
}

fn both_modes(w: &Workload, memory: MemoryKind) -> (PerfReport, PerfReport) {
    let mut analytic = CapstanConfig::new(memory);
    analytic.mem_timing = MemTiming::Analytic;
    let mut cycle = analytic;
    cycle.mem_timing = MemTiming::CycleLevel;
    (simulate(w, &analytic), simulate(w, &cycle))
}

#[test]
fn streaming_only_agrees_within_a_bounded_ratio() {
    // Contention-free streaming: sequential bursts rotate cleanly
    // across banks and mostly row-hit, so the banked channel earns
    // nearly the analytic streaming rate. The CAS pipeline fill and the
    // row-activation boundaries are the only extra costs.
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2, MemoryKind::Hbm2e] {
        let w = dram_workload(8, 1 << 20, 0, 0);
        let (a, c) = both_modes(&w, memory);
        let ratio = c.cycles as f64 / a.cycles as f64;
        assert!(
            (0.95..2.0).contains(&ratio),
            "{memory:?}: streaming ratio {ratio:.3} (analytic {}, cycle {})",
            a.cycles,
            c.cycles
        );
        let stats = c.mem.expect("cycle mode surfaces stats");
        assert!(stats.row_hits > stats.row_conflicts, "{stats:?}");
    }
}

#[test]
fn random_only_never_beats_the_analytic_rate() {
    // The banked row-miss penalty is derived so all-miss throughput
    // sits at or below the analytic random efficiency; scattered reads
    // must therefore drain no faster than the closed form (tolerance
    // covers the final partial burst and pipeline drain).
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        let w = dram_workload(8, 0, 4096, 0);
        let (a, c) = both_modes(&w, memory);
        assert!(
            c.cycles as f64 >= a.cycles as f64 * 0.95,
            "{memory:?}: cycle {} < analytic {}",
            c.cycles,
            a.cycles
        );
        let stats = c.mem.expect("cycle mode surfaces stats");
        assert!(stats.row_conflicts > 0);
        assert!(stats.contention_cycles > 0);
    }
}

#[test]
fn atomic_heavy_pays_for_ag_serialization() {
    // Uniform scatter over the AG region coalesces poorly: each atomic
    // pays a fetch and (on eviction) a writeback through the AG's own
    // channel, plus locked read-after-writeback holds — the analytic
    // 128-bytes-per-atomic estimate is a floor here, not a ceiling.
    // Coalescing can legitimately undercut the closed form, so the
    // lower bound carries a generous tolerance; the AG burst counters
    // prove the traffic really flowed through the slab.
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        let w = dram_workload(8, 0, 0, 4096);
        let (a, c) = both_modes(&w, memory);
        assert!(
            c.cycles as f64 >= a.cycles as f64 * 0.5,
            "{memory:?}: cycle {} implausibly beat analytic {}",
            c.cycles,
            a.cycles
        );
        let stats = c.mem.expect("cycle mode surfaces stats");
        assert!(stats.ag_bursts_fetched > 0);
        assert!(stats.ag_bursts_written > 0);
        assert_eq!(stats.atomic_words, 8 * 4096);
    }
}

#[test]
fn mixed_traffic_overlaps_but_respects_the_bandwidth_floor() {
    // The analytic model serializes the stream and random components
    // (sum of transfer times); the banked channel genuinely overlaps
    // them, so the cycle-level drain may undercut the analytic *sum* —
    // but never the bandwidth floor of either component alone.
    let w = dram_workload(8, 1 << 19, 2048, 1024);
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        let (a, c) = both_modes(&w, memory);
        let stream_only = both_modes(&dram_workload(8, 1 << 19, 0, 0), memory).0;
        assert!(
            c.cycles >= stream_only.cycles,
            "{memory:?}: mixed cycle {} beat its streaming floor {}",
            c.cycles,
            stream_only.cycles
        );
        assert!(
            c.cycles as f64 >= a.cycles as f64 * 0.45,
            "{memory:?}: cycle {} fell below the analytic band ({})",
            c.cycles,
            a.cycles
        );
        assert!(
            c.cycles as f64 <= a.cycles as f64 * 3.0,
            "{memory:?}: cycle {} diverged above the analytic band ({})",
            c.cycles,
            a.cycles
        );
    }
}

#[test]
fn cycle_level_is_strictly_monotone_in_atomic_words() {
    // Sweeping only the atomic intensity (the banked traffic is
    // byte-identical across the sweep — the driver keeps independent
    // address streams for exactly this reason) must strictly increase
    // the cycle-level drain.
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        let mut last = None;
        for atomic_words in [512u64, 2048, 8192, 32_768] {
            let w = dram_workload(4, 1 << 16, 512, atomic_words);
            let (_, c) = both_modes(&w, memory);
            if let Some(prev) = last {
                assert!(
                    c.cycles > prev,
                    "{memory:?}: {atomic_words} atomic words gave {} cycles, not above {prev}",
                    c.cycles
                );
            }
            last = Some(c.cycles);
        }
    }
}

#[test]
fn modes_agree_exactly_when_memory_is_ideal() {
    let w = dram_workload(4, 1 << 18, 1024, 1024);
    let (a, c) = both_modes(&w, MemoryKind::Ideal);
    assert_eq!(
        a.cycles, c.cycles,
        "ideal memory must cost zero in both modes"
    );
    assert!(c.mem.is_none());
}

#[test]
fn one_channel_config_matches_the_single_channel_driver_exactly() {
    // `mem_channels = 1` must be bit-identical to the default
    // (pre-multi-channel) configuration, end to end through `simulate`:
    // same cycles, same breakdown, same rolled-up memory counters. The
    // committed golden pins in `tests/determinism_golden.rs` pin the
    // absolute values; this differential pins the config plumbing.
    let w = dram_workload(8, 1 << 18, 2048, 4096);
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        let mut default_cfg = CapstanConfig::new(memory);
        default_cfg.mem_timing = MemTiming::CycleLevel;
        let mut explicit = default_cfg;
        explicit.mem_channels = 1;
        assert_eq!(default_cfg.mem_channels, 1, "default must stay 1");
        let a = simulate(&w, &default_cfg);
        let b = simulate(&w, &explicit);
        assert_eq!(a, b, "{memory:?}: explicit channels=1 diverged");
        assert_eq!(a.mem.expect("stats").channels, 1);
    }
}

#[test]
fn cycles_never_increase_as_channels_grow_on_bank_parallel_traffic() {
    // Bank-parallel traffic (streaming rows plus region-scattered
    // random bursts plus atomics) gains service bandwidth with every
    // added region channel; the cycle-level drain must be monotonically
    // non-increasing across the sweep.
    let w = dram_workload(8, 1 << 18, 2048, 4096);
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        let mut last = u64::MAX;
        for channels in [1usize, 2, 4, 8] {
            let mut cfg = CapstanConfig::new(memory);
            cfg.mem_timing = MemTiming::CycleLevel;
            cfg.mem_channels = channels;
            let r = simulate(&w, &cfg);
            assert!(
                r.cycles <= last,
                "{memory:?}: {channels} channels took {} cycles, more than {last}",
                r.cycles
            );
            assert_eq!(r.mem.expect("stats").channels, channels as u64);
            last = r.cycles;
        }
    }
}

#[test]
fn four_channels_strictly_beat_one_on_atomic_heavy_traffic() {
    // The acceptance shape of the `table13-channels` experiment:
    // atomic serialization is a per-region effect, so four AG regions
    // must drain an atomic-heavy batch strictly faster than one.
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        let w = dram_workload(8, 1 << 16, 512, 16_384);
        let mut one = CapstanConfig::new(memory);
        one.mem_timing = MemTiming::CycleLevel;
        one.mem_channels = 1;
        let mut four = one;
        four.mem_channels = 4;
        let r1 = simulate(&w, &one);
        let r4 = simulate(&w, &four);
        assert!(
            r4.cycles < r1.cycles,
            "{memory:?}: 4 channels ({}) must strictly beat 1 ({})",
            r4.cycles,
            r1.cycles
        );
    }
}

#[test]
fn atomic_monotonicity_holds_at_every_channel_count() {
    // The strict atomic-intensity monotonicity contract (the banked
    // traffic is byte-identical across the sweep; only the atomic
    // stream grows) must survive the multi-channel generalization: the
    // atomic address stream spans all regions, so a longer sweep is a
    // superset prefix regardless of how many AGs it steers to.
    for channels in [1usize, 2, 4] {
        let mut last = None;
        for atomic_words in [512u64, 2048, 8192, 32_768] {
            let w = dram_workload(4, 1 << 16, 512, atomic_words);
            let mut cfg = CapstanConfig::new(MemoryKind::Hbm2e);
            cfg.mem_timing = MemTiming::CycleLevel;
            cfg.mem_channels = channels;
            let r = simulate(&w, &cfg);
            if let Some(prev) = last {
                assert!(
                    r.cycles > prev,
                    "{channels} channels: {atomic_words} atomic words gave {} cycles, not above {prev}",
                    r.cycles
                );
            }
            last = Some(r.cycles);
        }
    }
}

/// Builds a workload whose atomic addresses are *recorded*:
/// `hub_permille`/1000 of the updates hit a 64-word hot set, the rest
/// stride over a wide region (deterministic, no RNG needed).
fn recorded_atomic_workload(tiles: usize, atomic_words: u64, hub_permille: u64) -> Workload {
    let mut wl = WorkloadBuilder::new("recorded-grid");
    for tile in 0..tiles as u64 {
        let mut t = wl.tile();
        t.foreach_vec(256, |_, _| {});
        t.dram_stream_read(1 << 14);
        for i in 0..atomic_words {
            let addr = if (i * 997 + tile) % 1000 < hub_permille {
                (i * 31 + tile) % 64 // the hot set
            } else {
                ((i * 7919) ^ (tile << 17)) % (1 << 22)
            };
            t.dram_atomic_at(addr);
        }
        wl.commit(t);
    }
    wl.finish()
}

fn with_addressing(memory: MemoryKind, addresses: MemAddressing) -> CapstanConfig {
    let mut cfg = CapstanConfig::new(memory);
    cfg.mem_timing = MemTiming::CycleLevel;
    cfg.mem_addresses = addresses;
    cfg
}

#[test]
fn recorded_addressing_never_loses_to_synthetic_on_skewed_kernels() {
    // Hub-heavy recorded streams coalesce in the AGs' open-burst caches;
    // the uniform synthetic spray cannot, so the recorded drain must be
    // no slower — and strictly faster at heavy skew.
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        let w = recorded_atomic_workload(4, 4096, 875);
        let s = simulate(&w, &with_addressing(memory, MemAddressing::Synthetic));
        let r = simulate(&w, &with_addressing(memory, MemAddressing::Recorded));
        assert!(
            r.cycles <= s.cycles,
            "{memory:?}: recorded {} exceeded synthetic {}",
            r.cycles,
            s.cycles
        );
        let (sm, rm) = (s.mem.expect("stats"), r.mem.expect("stats"));
        assert_eq!(sm.atomic_words, rm.atomic_words, "word counts conserved");
        assert!(
            rm.ag_bursts_fetched < sm.ag_bursts_fetched,
            "{memory:?}: hub replay must coalesce ({} vs {} fetches)",
            rm.ag_bursts_fetched,
            sm.ag_bursts_fetched
        );
    }
}

#[test]
fn recorded_addressing_without_recordings_matches_synthetic_exactly() {
    // Count-only workloads record no addresses, so the recorded mode
    // must fall back to the synthetic streams bit-for-bit — the
    // contract that keeps every committed golden pin valid.
    let w = dram_workload(8, 1 << 18, 2048, 4096);
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        let s = simulate(&w, &with_addressing(memory, MemAddressing::Synthetic));
        let r = simulate(&w, &with_addressing(memory, MemAddressing::Recorded));
        assert_eq!(s, r, "{memory:?}: fallback diverged from synthetic");
    }
}

#[test]
fn recorded_addressing_agrees_with_synthetic_on_ideal_memory() {
    // Ideal memory skips the cycle-level driver entirely; the
    // addressing mode must not matter.
    let w = recorded_atomic_workload(4, 2048, 875);
    let s = simulate(
        &w,
        &with_addressing(MemoryKind::Ideal, MemAddressing::Synthetic),
    );
    let r = simulate(
        &w,
        &with_addressing(MemoryKind::Ideal, MemAddressing::Recorded),
    );
    assert_eq!(s.cycles, r.cycles);
    assert!(s.mem.is_none() && r.mem.is_none());
}

#[test]
fn recorded_replay_is_bit_reproducible() {
    // Two recorded-mode simulations of the same workload must agree
    // bit-for-bit — the golden pins and the CI `CAPSTAN_THREADS`
    // byte-diff build on this (the cross-thread half lives in
    // `crates/bench/tests/sampling_determinism.rs`, which needs
    // `capstan_par`).
    let w = recorded_atomic_workload(8, 2048, 500);
    let cfg = with_addressing(MemoryKind::Hbm2e, MemAddressing::Recorded);
    let a = simulate(&w, &cfg);
    let b = simulate(&w, &cfg);
    assert_eq!(a, b);
}

#[test]
fn fast_forward_reports_match_the_per_cycle_reference_end_to_end() {
    // The event-driven fast path (`CapstanConfig::mem_fast_forward`,
    // default on) is a wall-clock optimization only: through the full
    // `simulate` stack — driver checkout pool included — it must
    // produce the identical `PerfReport`, memory stats and all, as the
    // per-cycle reference loop, for both scattered-address sources.
    // (The channel-level byte-identity proofs live in
    // `crates/arch/tests/fast_forward.rs`; this pins the config
    // plumbing end to end.)
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        for (name, w) in [
            ("count-only", dram_workload(8, 1 << 18, 2048, 4096)),
            ("recorded", recorded_atomic_workload(4, 2048, 875)),
        ] {
            for addresses in [MemAddressing::Synthetic, MemAddressing::Recorded] {
                let mut fast = with_addressing(memory, addresses);
                fast.mem_fast_forward = true;
                let mut slow = fast;
                slow.mem_fast_forward = false;
                assert_eq!(
                    simulate(&w, &fast),
                    simulate(&w, &slow),
                    "{memory:?}/{name}/{addresses:?}: fast-forward changed the report"
                );
            }
        }
    }
}

#[test]
fn cycle_level_report_is_reproducible() {
    // Two simulations of the same workload must agree bit-for-bit —
    // the determinism contract golden tests and CI byte-diffs build on.
    let w = dram_workload(8, 1 << 18, 2048, 4096);
    let (_, c1) = both_modes(&w, MemoryKind::Hbm2e);
    let (_, c2) = both_modes(&w, MemoryKind::Hbm2e);
    assert_eq!(c1, c2);
}
