//! End-to-end functional correctness: every application's recorded
//! Capstan execution must match its CPU reference on every dataset class.

use capstan::apps::bfs::Bfs;
use capstan::apps::bicgstab::BiCgStab;
use capstan::apps::common::rel_l2_error;
use capstan::apps::conv::SparseConv;
use capstan::apps::mpm::MatrixAdd;
use capstan::apps::pagerank::{PrEdge, PrPull};
use capstan::apps::spmspm::SpMSpM;
use capstan::apps::spmv::{CooSpmv, CscSpmv, CsrSpmv};
use capstan::apps::sssp::Sssp;
use capstan::core::config::CapstanConfig;
use capstan::tensor::gen::Dataset;

const TOL: f64 = 1e-4;

#[test]
fn spmv_correct_on_every_la_dataset() {
    let cfg = CapstanConfig::paper_default();
    for ds in [
        Dataset::Ckt11752,
        Dataset::Trefethen20000,
        Dataset::Bcsstk30,
    ] {
        let m = ds.generate_scaled(0.03);
        let csr = CsrSpmv::new(&m);
        assert!(
            rel_l2_error(&csr.record(&cfg).1, &csr.reference()) < TOL,
            "CSR {ds:?}"
        );
        let coo = CooSpmv::new(&m);
        assert!(
            rel_l2_error(&coo.record(&cfg).1, &coo.reference()) < TOL,
            "COO {ds:?}"
        );
        let csc = CscSpmv::new(&m);
        assert!(
            rel_l2_error(&csc.record(&cfg).1, &csc.reference()) < TOL,
            "CSC {ds:?}"
        );
    }
}

#[test]
fn spmv_variants_agree_with_each_other() {
    let cfg = CapstanConfig::paper_default();
    let m = Dataset::Bcsstk30.generate_scaled(0.02);
    let x = capstan::apps::common::dense_vector(m.cols());
    let csr = CsrSpmv::with_vector(&m, x.clone());
    let csc = CscSpmv::with_vector(&m, &x);
    let (_, y_csr) = csr.record(&cfg);
    let (_, y_csc) = csc.record(&cfg);
    assert!(rel_l2_error(&y_csr, &y_csc) < TOL);
}

#[test]
fn pagerank_correct_on_every_graph() {
    let cfg = CapstanConfig::paper_default();
    for ds in [Dataset::UsRoads, Dataset::WebStanford, Dataset::Flickr] {
        let g = ds.generate_scaled(0.008);
        let pull = PrPull::new(&g);
        assert!(
            rel_l2_error(&pull.record(&cfg).1, &pull.reference()) < TOL,
            "PR-Pull {ds:?}"
        );
        let edge = PrEdge::new(&g);
        assert!(
            rel_l2_error(&edge.record(&cfg).1, &edge.reference()) < TOL,
            "PR-Edge {ds:?}"
        );
    }
}

#[test]
fn bfs_and_sssp_correct_on_every_graph() {
    let cfg = CapstanConfig::paper_default();
    for ds in [Dataset::UsRoads, Dataset::WebStanford, Dataset::Gnutella31] {
        let g = ds.generate_scaled(0.008);
        let bfs = Bfs::new(&g);
        let (_, bfs_result) = bfs.record(&cfg);
        assert_eq!(bfs_result.dist, bfs.reference().dist, "BFS {ds:?}");

        let sssp = Sssp::new(&g);
        let (_, sssp_result) = sssp.record(&cfg);
        let dijkstra = sssp.reference();
        for (v, (&a, &b)) in sssp_result.dist.iter().zip(&dijkstra.dist).enumerate() {
            if b.is_infinite() {
                assert!(a.is_infinite(), "SSSP {ds:?} node {v}");
            } else {
                assert!((a - b).abs() < 1e-3, "SSSP {ds:?} node {v}: {a} vs {b}");
            }
        }
    }
}

#[test]
fn matrix_kernels_correct() {
    let cfg = CapstanConfig::paper_default();
    // M+M on a circuit matrix.
    let m = Dataset::Ckt11752.generate_scaled(0.02);
    let add = MatrixAdd::self_shifted(&m);
    let (_, c) = add.record(&cfg);
    assert_eq!(c.to_dense(), add.reference().to_dense());

    // SpMSpM on qc324.
    let q = Dataset::Qc324.generate_scaled(0.25);
    let mul = SpMSpM::squared(&q);
    let (_, c) = mul.record(&cfg);
    let r = mul.reference();
    let cd = c.to_dense();
    let rd = r.to_dense();
    for row in 0..cd.rows() {
        for (x, y) in cd.row(row).iter().zip(rd.row(row)) {
            assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }
}

#[test]
fn conv_correct_on_all_layers() {
    let cfg = CapstanConfig::paper_default();
    for ds in [
        Dataset::ResNet50L1,
        Dataset::ResNet50L2,
        Dataset::ResNet50L29,
    ] {
        let app = SparseConv::from_dataset(ds, 0.08);
        let (_, out) = app.record(&cfg);
        assert!(rel_l2_error(&out, &app.reference()) < TOL, "{ds:?}");
    }
}

#[test]
fn bicgstab_converges_and_matches() {
    let cfg = CapstanConfig::paper_default();
    let mut solver = BiCgStab::new(&Dataset::Trefethen20000.generate_scaled(0.03));
    solver.iterations = 12;
    let (wl, result) = solver.record(&cfg);
    let reference = solver.reference();
    assert_eq!(result.residuals.len(), reference.residuals.len());
    assert!(result.residuals.last().unwrap() < result.residuals.first().unwrap());
    assert_eq!(wl.dependent_rounds, 12);
}
