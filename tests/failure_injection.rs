//! Failure-injection and degenerate-input tests: malformed external data
//! must surface as errors (never panics), and pathological-but-valid
//! inputs must flow through the entire simulation stack.

use capstan::apps::bfs::Bfs;
use capstan::apps::mpm::MatrixAdd;
use capstan::apps::pagerank::{PrEdge, PrPull};
use capstan::apps::spmspm::SpMSpM;
use capstan::apps::spmv::{BcsrSpmv, CooSpmv, CscSpmv, CsrSpmv};
use capstan::apps::sssp::Sssp;
use capstan::apps::App;
use capstan::arch::spmu::{BankHash, OrderingMode};
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::tensor::error::FormatError;
use capstan::tensor::{mm, Coo, Csr};

// --- Malformed external data -------------------------------------------------

fn parse(text: &str) -> Result<Coo, FormatError> {
    mm::read(text.as_bytes())
}

#[test]
fn mm_rejects_truncated_header() {
    let err = parse("%%MatrixMarket matrix\n2 2 1\n1 1 3.0\n").unwrap_err();
    assert!(matches!(err, FormatError::Parse { line: 1, .. }), "{err}");
}

#[test]
fn mm_rejects_missing_size_line() {
    let err = parse("%%MatrixMarket matrix coordinate real general\n").unwrap_err();
    assert!(matches!(err, FormatError::Parse { .. }), "{err}");
}

#[test]
fn mm_rejects_non_numeric_entry() {
    let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 banana 3.0\n";
    let err = parse(text).unwrap_err();
    assert!(matches!(err, FormatError::Parse { line: 3, .. }), "{err}");
}

#[test]
fn mm_rejects_truncated_entry_list() {
    let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
    let err = parse(text).unwrap_err();
    let msg = err.to_string();
    assert!(!msg.is_empty());
}

#[test]
fn mm_rejects_out_of_bounds_coordinates() {
    let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n";
    assert!(parse(text).is_err());
}

#[test]
fn mm_rejects_zero_based_coordinates() {
    // Matrix Market is 1-based; a 0 coordinate is malformed.
    let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
    assert!(parse(text).is_err());
}

#[test]
fn mm_accepts_exponent_notation_and_crlf() {
    let text =
        "%%MatrixMarket matrix coordinate real general\r\n2 2 2\r\n1 1 1e-3\r\n2 2 -2.5E+1\r\n";
    let m = parse(text).expect("valid CRLF file");
    assert_eq!(m.nnz(), 2);
}

#[test]
fn triplets_out_of_bounds_is_an_error_not_a_panic() {
    let err = Coo::from_triplets(4, 4, vec![(4, 0, 1.0)]).unwrap_err();
    assert!(matches!(
        err,
        FormatError::IndexOutOfBounds {
            axis: 0,
            index: 4,
            extent: 4
        }
    ));
    let err = Coo::from_triplets(4, 4, vec![(0, 9, 1.0)]).unwrap_err();
    assert!(matches!(err, FormatError::IndexOutOfBounds { axis: 1, .. }));
}

#[test]
fn csr_from_raw_rejects_corrupted_pointers() {
    // Non-monotone row_ptr.
    assert!(Csr::from_raw(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).is_err());
    // row_ptr does not start at zero.
    assert!(Csr::from_raw(2, 2, vec![1, 1, 1], vec![], vec![]).is_err());
    // nnz mismatch between row_ptr and col_idx.
    assert!(Csr::from_raw(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 2.0]).is_err());
    // Values length mismatch.
    assert!(Csr::from_raw(1, 2, vec![0, 2], vec![0, 1], vec![1.0]).is_err());
    // Duplicate column within a row.
    assert!(Csr::from_raw(1, 4, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
    // Column index beyond extent.
    assert!(Csr::from_raw(1, 2, vec![0, 1], vec![7], vec![1.0]).is_err());
}

// --- Degenerate-but-valid inputs through the full stack -----------------------

fn simulate_all(m: &Coo, cfg: &CapstanConfig) {
    for app in [
        &CsrSpmv::new(m) as &dyn App,
        &CooSpmv::new(m),
        &CscSpmv::new(m),
        &BcsrSpmv::new(m, 16),
    ] {
        let report = app.simulate(cfg);
        assert!(report.cycles >= 1, "{} produced zero cycles", app.name());
        assert!(report.sram_bank_utilization <= 1.0 + 1e-9);
        assert!(report.lane_efficiency <= 1.0 + 1e-9);
    }
}

#[test]
fn one_by_one_matrix() {
    let m = Coo::from_triplets(1, 1, vec![(0, 0, 2.5)]).unwrap();
    simulate_all(&m, &CapstanConfig::paper_default());
}

#[test]
fn single_row_and_single_column_matrices() {
    let cfg = CapstanConfig::paper_default();
    let row = Coo::from_triplets(1, 64, (0..64).map(|c| (0, c, 1.0)).collect()).unwrap();
    simulate_all(&row, &cfg);
    let col = Coo::from_triplets(64, 1, (0..64).map(|r| (r, 0, 1.0)).collect()).unwrap();
    simulate_all(&col, &cfg);
}

#[test]
fn graph_of_isolated_nodes() {
    // No edges at all: BFS/SSSP frontiers die immediately, PR has no
    // in-edges anywhere; everything must still terminate.
    let g = Coo::zeros(128, 128);
    let cfg = CapstanConfig::paper_default();
    for app in [
        &Bfs::new(&g) as &dyn App,
        &Sssp::new(&g),
        &PrPull::new(&g),
        &PrEdge::new(&g),
    ] {
        let report = app.simulate(&cfg);
        assert!(report.cycles >= 1, "{}", app.name());
    }
}

#[test]
fn graph_of_self_loops_only() {
    let g = Coo::from_triplets(64, 64, (0..64).map(|i| (i, i, 1.0)).collect()).unwrap();
    let cfg = CapstanConfig::paper_default();
    for app in [&Bfs::new(&g) as &dyn App, &Sssp::new(&g), &PrPull::new(&g)] {
        let report = app.simulate(&cfg);
        assert!(report.cycles >= 1, "{}", app.name());
    }
}

#[test]
fn spmspm_with_disjoint_supports_yields_empty_product() {
    // A has only the left column block, B has only the bottom rows that A
    // never references: C = A*B is structurally empty.
    let a = Coo::from_triplets(32, 32, (0..32).map(|i| (i, 0, 1.0)).collect()).unwrap();
    let b = Coo::from_triplets(32, 32, (1..32).map(|i| (i, i, 1.0)).collect()).unwrap();
    let app = SpMSpM::new(&a, &b);
    let report = app.simulate(&CapstanConfig::paper_default());
    assert!(report.cycles >= 1);
    let product = app.reference();
    assert_eq!(product.nnz(), 0, "disjoint supports must produce no output");
}

#[test]
fn matrix_add_of_identical_and_disjoint_operands() {
    let cfg = CapstanConfig::paper_default();
    let m = capstan::tensor::gen::circuit(256, 1400, 3);
    // Identical: intersection is everything, union equals either operand.
    let same = MatrixAdd::new(&m, &m);
    assert!(same.simulate(&cfg).cycles >= 1);
    let sum = same.reference();
    assert_eq!(sum.nnz(), m.nnz());
    // Shifted: mostly disjoint supports exercise the union-with-misses
    // path (-1 indices from the scanner in union mode).
    let shifted = MatrixAdd::self_shifted(&m);
    assert!(shifted.simulate(&cfg).cycles >= 1);
}

// --- Extreme configurations ---------------------------------------------------

#[test]
fn harshest_config_still_completes() {
    // Everything that can be restricted, restricted at once: 1-deep
    // queue, single allocation iteration and priority, linear banking,
    // full ordering, no compression, serial outer loop.
    let mut cfg = CapstanConfig::new(MemoryKind::Ddr4);
    cfg.spmu.queue_depth = 1;
    cfg.spmu.alloc_iterations = 1;
    cfg.spmu.priorities = 1;
    cfg.spmu.hash = BankHash::Linear;
    cfg.spmu.ordering = OrderingMode::FullyOrdered;
    cfg.compression = false;
    cfg.outer_par = 1;
    let m = capstan::tensor::gen::circuit(512, 3000, 9);
    simulate_all(&m, &cfg);
    // And the restricted config can only be slower than the default.
    let restricted = CsrSpmv::new(&m).simulate(&cfg).cycles;
    let default = CsrSpmv::new(&m)
        .simulate(&CapstanConfig::new(MemoryKind::Ddr4))
        .cycles;
    assert!(
        restricted >= default,
        "restricted {restricted} vs default {default}"
    );
}

#[test]
fn breakdown_always_accounts_every_cycle() {
    // Stall attribution must sum to the total for both easy and harsh
    // configurations.
    let m = capstan::tensor::gen::power_law(1500, 12_000, 2.1, 5);
    for cfg in [
        CapstanConfig::paper_default(),
        CapstanConfig::ideal(),
        CapstanConfig::new(MemoryKind::Ddr4),
    ] {
        let report = CooSpmv::new(&m).simulate(&cfg);
        assert_eq!(
            report.breakdown.total(),
            report.cycles,
            "breakdown must sum to cycles under {:?}",
            cfg.memory
        );
    }
}
