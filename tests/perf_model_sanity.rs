//! Sanity properties of the performance model: breakdown consistency,
//! bandwidth monotonicity, configuration dominance, and determinism.

use capstan::apps::cg::ConjugateGradient;
use capstan::apps::gnn::{GcnLayer, Spmm};
use capstan::apps::pagerank::PrPull;
use capstan::apps::spmv::{BcsrSpmv, CooSpmv, CsrSpmv, DcsrSpmv};
use capstan::apps::App;
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::tensor::gen::Dataset;
use capstan::tensor::DenseMatrix;

fn apps() -> Vec<Box<dyn App>> {
    let la = Dataset::Ckt11752.generate_scaled(0.02);
    let g = Dataset::WebStanford.generate_scaled(0.008);
    let features = DenseMatrix::from_fn(g.cols(), 16, |r, c| ((r + c) % 3) as f32);
    let mut cg = ConjugateGradient::new(&capstan::tensor::gen::multi_diagonal(800, 5600));
    cg.iterations = 4;
    vec![
        Box::new(CsrSpmv::new(&la)),
        Box::new(CooSpmv::new(&la)),
        Box::new(BcsrSpmv::new(&la, 16)),
        Box::new(DcsrSpmv::new(&la)),
        Box::new(PrPull::new(&g)),
        Box::new(Spmm::new(&g, features)),
        Box::new(GcnLayer::with_synthetic(&g, 16, 16)),
        Box::new(cg),
    ]
}

#[test]
fn breakdown_always_sums_to_total() {
    for app in apps() {
        for mem in [
            MemoryKind::Ddr4,
            MemoryKind::Hbm2,
            MemoryKind::Hbm2e,
            MemoryKind::Ideal,
        ] {
            let report = app.simulate(&CapstanConfig::new(mem));
            assert_eq!(
                report.breakdown.total(),
                report.cycles,
                "{} on {:?}",
                app.name(),
                mem
            );
        }
    }
}

#[test]
fn bandwidth_is_monotone() {
    for app in apps() {
        let mut last = u64::MAX;
        for bw in [20.0, 68.0, 200.0, 900.0, 1800.0, 5000.0] {
            let report = app.simulate(&CapstanConfig::new(MemoryKind::Custom(bw)));
            assert!(
                report.cycles <= last,
                "{}: {bw} GB/s took {} > previous {}",
                app.name(),
                report.cycles,
                last
            );
            last = report.cycles;
        }
    }
}

#[test]
fn ideal_dominates_every_real_configuration() {
    for app in apps() {
        let ideal = app.simulate(&CapstanConfig::ideal());
        for mem in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
            let real = app.simulate(&CapstanConfig::new(mem));
            assert!(
                ideal.cycles <= real.cycles,
                "{}: ideal {} > {:?} {}",
                app.name(),
                ideal.cycles,
                mem,
                real.cycles
            );
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    for app in apps() {
        let cfg = CapstanConfig::paper_default();
        let a = app.simulate(&cfg);
        let b = app.simulate(&cfg);
        assert_eq!(a.cycles, b.cycles, "{} not deterministic", app.name());
        assert_eq!(a.breakdown, b.breakdown);
    }
}

#[test]
fn more_pipelines_never_slow_the_whole_chip() {
    let la = Dataset::Trefethen20000.generate_scaled(0.05);
    let app = CsrSpmv::new(&la);
    let cycles = |par: usize| {
        let mut cfg = CapstanConfig::ideal();
        cfg.outer_par = par;
        app.simulate(&cfg).cycles as f64
    };
    let small = cycles(4);
    let big = cycles(64);
    assert!(big < small, "64 pipelines ({big}) should beat 4 ({small})");
}

#[test]
fn lane_efficiency_is_a_fraction() {
    for app in apps() {
        let report = app.simulate(&CapstanConfig::paper_default());
        assert!(report.lane_efficiency >= 0.0 && report.lane_efficiency <= 1.0);
        assert!(report.sram_bank_utilization >= 0.0 && report.sram_bank_utilization <= 1.0);
    }
}
