//! Integration tests pinning the extension studies (DESIGN.md §6): the
//! applications the paper motivates but does not evaluate — GNNs (§5),
//! Krylov solvers (§1), and block-sparse formats (§2.1).

use capstan::apps::cg::ConjugateGradient;
use capstan::apps::gnn::{GcnLayer, Spmm};
use capstan::apps::pagerank::PrPull;
use capstan::apps::spmv::{BcsrSpmv, CsrSpmv};
use capstan::apps::App;
use capstan::arch::spmu::driver::{run_vectors, TraceRng};
use capstan::arch::spmu::{AccessVector, LaneRequest, SpmuConfig};
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::core::program::Workload;
use capstan::tensor::dense::DenseMatrix;
use capstan::tensor::gen;

fn occupancy(wl: &Workload) -> f64 {
    let work: u64 = wl.tiles.iter().map(|t| t.lane_work).sum();
    let slots: u64 = wl.tiles.iter().map(|t| t.vectors).sum::<u64>() * 16;
    work as f64 / slots.max(1) as f64
}

/// The GNN claim: mapping the feature dimension onto the vector lanes
/// hides the power-law degree skew that starves PR-Pull (paper Fig. 7).
#[test]
fn spmm_occupancy_beats_pr_pull_on_power_law() {
    let graph = gen::power_law(3000, 24_000, 2.1, 17);
    let cfg = CapstanConfig::paper_default();
    let b = DenseMatrix::from_fn(graph.cols(), 32, |r, c| ((r + c) % 3) as f32 - 1.0);
    let spmm_occ = occupancy(&Spmm::new(&graph, b).build(&cfg));
    let pr_occ = occupancy(&PrPull::new(&graph).build(&cfg));
    assert!(spmm_occ > 0.95, "SpMM occupancy {spmm_occ:.3}");
    assert!(
        pr_occ < 0.75,
        "PR-Pull occupancy {pr_occ:.3} should show degree starvation"
    );
    assert!(spmm_occ > pr_occ * 1.3);
}

/// Kernel fusion (paper §4.4, extended to GCN and CG): the fused
/// pipeline never loses, and wins clearly where bandwidth is scarce.
#[test]
fn fusion_wins_on_ddr4() {
    let ddr = CapstanConfig::new(MemoryKind::Ddr4);

    let graph = gen::power_law(2000, 16_000, 2.1, 23);
    let layer = GcnLayer::with_synthetic(&graph, 32, 32);
    let fused = capstan::core::perf::simulate(&layer.record(&ddr).0, &ddr).cycles;
    let unfused = capstan::core::perf::simulate(&layer.record_unfused(&ddr).0, &ddr).cycles;
    assert!(fused <= unfused, "GCN fused {fused} vs unfused {unfused}");

    let system = gen::multi_diagonal(4000, 28_000);
    let mut cg = ConjugateGradient::new(&system);
    cg.iterations = 6;
    let fused = capstan::core::perf::simulate(&cg.record(&ddr).0, &ddr).cycles;
    let unfused = capstan::core::perf::simulate(&cg.record_unfused(&ddr).0, &ddr).cycles;
    assert!(
        (fused as f64) < unfused as f64 * 0.9,
        "CG fused {fused} should beat unfused {unfused} by >10% on DDR4"
    );
}

/// The block-format trade (paper §2.1): BCSR wins when blocks fill
/// (clustered structure), CSR wins when they do not (scattered).
#[test]
fn bcsr_crossover_direction() {
    let cfg = CapstanConfig::new(MemoryKind::Hbm2e);
    let clustered = gen::banded(2048, 120_000, 11);
    let bcsr = BcsrSpmv::new(&clustered, 16);
    let csr = CsrSpmv::new(&clustered);
    assert!(
        bcsr.simulate(&cfg).cycles < csr.simulate(&cfg).cycles,
        "clustered: BCSR wins"
    );

    let scattered = gen::uniform(2048, 2048, 8192, 13);
    let bcsr = BcsrSpmv::new(&scattered, 16);
    let csr = CsrSpmv::new(&scattered);
    assert!(
        bcsr.simulate(&cfg).cycles > csr.simulate(&cfg).cycles,
        "scattered: CSR wins"
    );
}

/// Repeated-read elision (paper §3.1.2): a hot-set trace gets faster with
/// elision on; a uniform trace is unharmed.
#[test]
fn elision_helps_skewed_traces_only() {
    let base = SpmuConfig::default();
    let make_trace = |hot_permille: u64| -> Vec<AccessVector> {
        let mut rng = TraceRng::new(0xE11);
        let span = base.capacity_words() as u64;
        (0..1500)
            .map(|_| AccessVector {
                lanes: (0..base.lanes)
                    .map(|_| {
                        let addr = if rng.below(1000) < hot_permille {
                            rng.below(8) as u32
                        } else {
                            rng.below(span) as u32
                        };
                        Some(LaneRequest::read(addr))
                    })
                    .collect(),
            })
            .collect()
    };
    let cycles = |elide: bool, trace: &[AccessVector]| {
        let mut cfg = base;
        cfg.elide_repeated_reads = elide;
        run_vectors(cfg, trace).cycles
    };
    let skewed = make_trace(500);
    assert!(
        (cycles(true, &skewed) as f64) < cycles(false, &skewed) as f64 * 0.9,
        "elision should cut >10% of cycles on a 50%-hot trace"
    );
    let uniform = make_trace(0);
    let on = cycles(true, &uniform);
    let off = cycles(false, &uniform);
    assert!(
        on as f64 <= off as f64 * 1.02,
        "elision must not hurt uniform traces: {on} vs {off}"
    );
}
