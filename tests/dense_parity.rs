//! Dense-workload parity: Capstan "retains its baseline's flexibility,
//! performance, and programmability for dense applications" (paper §1) —
//! its sparse mechanisms must cost nothing when a workload never touches
//! them.

use capstan::baselines::plasticine;
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::core::perf::simulate;
use capstan::core::program::{Workload, WorkloadBuilder};

/// A dense streaming workload: tiled AXPY-like passes with sequential
/// loads/stores, no scans, no random SRAM accesses, no cross-tile traffic.
fn dense_workload(cfg: &CapstanConfig) -> Workload {
    let mut wl = WorkloadBuilder::for_config("dense-axpy", cfg);
    for _ in 0..32 {
        let mut t = wl.tile();
        t.dram_stream_read(64 * 1024);
        t.foreach_vec(16 * 1024, |_, _| {});
        t.dram_stream_write(32 * 1024);
        wl.commit(t);
    }
    wl.finish()
}

/// A dense matmul-ish workload: compute-heavy, still no sparse features.
fn dense_compute_workload(cfg: &CapstanConfig) -> Workload {
    let mut wl = WorkloadBuilder::for_config("dense-gemm-tile", cfg);
    for _ in 0..32 {
        let mut t = wl.tile();
        t.dram_stream_read(16 * 1024);
        t.foreach_vec(256 * 1024, |_, _| {});
        t.dram_stream_write(16 * 1024);
        wl.commit(t);
    }
    wl.finish()
}

#[test]
fn dense_streaming_parity_with_plasticine() {
    let capstan_cfg = CapstanConfig::new(MemoryKind::Hbm2e);
    let mut plasticine_cfg = plasticine::config(MemoryKind::Hbm2e);
    // Compression is a Capstan feature; disable it for strict parity.
    let mut capstan_flat = capstan_cfg;
    capstan_flat.compression = false;
    let c = simulate(&dense_workload(&capstan_flat), &capstan_flat);
    let p = simulate(&dense_workload(&plasticine_cfg), &plasticine_cfg);
    let ratio = c.cycles as f64 / p.cycles as f64;
    assert!(
        (ratio - 1.0).abs() < 0.01,
        "dense runtime must match Plasticine exactly: ratio {ratio:.3}"
    );
    plasticine_cfg.compression = false;
    let p2 = simulate(&dense_workload(&plasticine_cfg), &plasticine_cfg);
    assert_eq!(p.cycles, p2.cycles);
}

#[test]
fn dense_compute_parity_with_plasticine() {
    let mut capstan_cfg = CapstanConfig::new(MemoryKind::Hbm2e);
    capstan_cfg.compression = false;
    let plasticine_cfg = plasticine::config(MemoryKind::Hbm2e);
    let c = simulate(&dense_compute_workload(&capstan_cfg), &capstan_cfg);
    let p = simulate(&dense_compute_workload(&plasticine_cfg), &plasticine_cfg);
    assert_eq!(
        c.cycles, p.cycles,
        "compute-bound dense workloads must be identical"
    );
    // And they are compute-bound: active dominates.
    assert!(c.breakdown.active * 2 > c.cycles);
}

#[test]
fn dense_workloads_have_no_sparse_stalls() {
    let cfg = CapstanConfig::new(MemoryKind::Hbm2e);
    let report = simulate(&dense_workload(&cfg), &cfg);
    assert_eq!(report.breakdown.scan, 0);
    assert_eq!(report.breakdown.sram, 0);
    assert_eq!(report.breakdown.network, 0);
    assert_eq!(report.sram_bank_utilization, 0.0);
}
