//! Golden determinism regression tests.
//!
//! These values were captured from the pre-refactor simulator (the naive
//! allocate-per-tick loop) via `examples/golden_capture.rs`. The
//! scratch-buffer refactor of `Spmu::tick` must be a pure performance
//! change: every measurement here has to stay **bit-identical** —
//! utilizations are compared by `f64::to_bits`, not tolerance.

use capstan::apps::App;
use capstan::arch::spmu::driver::{measure_random_throughput, run_vectors};
use capstan::arch::spmu::{AccessVector, OrderingMode, SpmuConfig};
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::core::perf::simulate;
use capstan::tensor::gen::Dataset;

#[test]
fn random_throughput_is_bit_identical_to_golden() {
    let golden: &[(OrderingMode, u64, u64)] = &[
        (OrderingMode::Unordered, 0x3FE9AE5604189375, 25_680),
        (OrderingMode::AddressOrdered, 0x3FD3E9FBE76C8B44, 9_936),
        (OrderingMode::FullyOrdered, 0x3FD030A3D70A3D71, 8_080),
        (OrderingMode::Arbitrated, 0x3FD4C395810624DD, 10_384),
    ];
    for &(ordering, util_bits, requests) in golden {
        let cfg = SpmuConfig {
            ordering,
            ..Default::default()
        };
        let r = measure_random_throughput(cfg, 42, 500, 2000);
        assert_eq!(
            r.bank_utilization.to_bits(),
            util_bits,
            "{ordering:?} utilization drifted: {:.6}",
            r.bank_utilization
        );
        assert_eq!(r.requests, requests, "{ordering:?} request count drifted");
        assert_eq!(r.cycles, 2000);
    }
}

#[test]
fn run_vectors_is_bit_identical_to_golden() {
    let vectors: Vec<AccessVector> = (0..64)
        .map(|i| {
            AccessVector::reads(
                &(0..16u32)
                    .map(|l| (i * 97 + l * 13) % 4096)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let r = run_vectors(SpmuConfig::default(), &vectors);
    assert_eq!(r.bank_utilization.to_bits(), 0x3FE745D1745D1746);
    assert_eq!(r.requests, 1024);
    assert_eq!(r.cycles, 88);
}

#[test]
fn perf_simulate_is_bit_identical_to_golden() {
    // (dataset, memory, cycles, [active, scan, ls, vl, imb, net, sram, dram], util bits)
    struct Golden {
        dataset: Dataset,
        memory: MemoryKind,
        cycles: u64,
        breakdown: [u64; 8],
        util_bits: u64,
    }
    let golden = [
        Golden {
            dataset: Dataset::Ckt11752,
            memory: MemoryKind::Hbm2e,
            cycles: 122,
            breakdown: [26, 0, 38, 0, 5, 0, 4, 49],
            util_bits: 0x3FD7267E366968C1,
        },
        Golden {
            dataset: Dataset::Ckt11752,
            memory: MemoryKind::Ddr4,
            cycles: 3226,
            breakdown: [26, 0, 38, 0, 5, 0, 4, 3153],
            util_bits: 0x3FD7267E366968C1,
        },
        Golden {
            dataset: Dataset::Trefethen20000,
            memory: MemoryKind::Hbm2e,
            cycles: 120,
            breakdown: [29, 0, 34, 0, 0, 0, 3, 54],
            util_bits: 0x3FE030A8C81C123F,
        },
        Golden {
            dataset: Dataset::Trefethen20000,
            memory: MemoryKind::Ddr4,
            cycles: 3162,
            breakdown: [29, 0, 34, 0, 0, 0, 3, 3096],
            util_bits: 0x3FE030A8C81C123F,
        },
    ];
    for g in golden {
        let app = capstan::apps::spmv::CsrSpmv::new(&g.dataset.generate_scaled(0.04));
        let wl = app.build(&CapstanConfig::paper_default());
        let r = simulate(&wl, &CapstanConfig::new(g.memory));
        let b = r.breakdown;
        assert_eq!(
            (
                r.cycles,
                [
                    b.active,
                    b.scan,
                    b.load_store,
                    b.vector_length,
                    b.imbalance,
                    b.network,
                    b.sram,
                    b.dram
                ]
            ),
            (g.cycles, g.breakdown),
            "{:?}/{:?} drifted",
            g.dataset,
            g.memory
        );
        assert_eq!(r.sram_bank_utilization.to_bits(), g.util_bits);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv(hash: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Golden pins for the address generator's completion stream
/// (AG-heavy / DRAM-bound path). Captured from the pre-refactor,
/// `HashMap`-keyed AG via `examples/golden_capture_memsys.rs`; the
/// slab-indexed implementation must reproduce the exact completion
/// sequence (tags, result values, and cycles, hashed in order), final
/// memory image, burst counts, and drain cycle.
#[test]
fn ag_completion_stream_is_bit_identical_to_golden() {
    use capstan::arch::ag::{AddressGenerator, DramAccess};
    use capstan::arch::spmu::driver::TraceRng;
    use capstan::arch::spmu::RmwOp;
    use capstan::sim::dram::{DramModel, MemoryKind as SimMem};

    struct Golden {
        kind: SimMem,
        capacity: usize,
        seed: u64,
        completions: u64,
        stream_hash: u64,
        mem_hash: u64,
        fetched: u64,
        written: u64,
        cycle: u64,
    }
    let golden = [
        Golden {
            kind: SimMem::Ddr4,
            capacity: 4,
            seed: 0xA6_601D,
            completions: 1113,
            stream_hash: 0xD107D87A2BBA3AC2,
            mem_hash: 0x9A98384800462FF7,
            fetched: 878,
            written: 744,
            cycle: 6674,
        },
        Golden {
            kind: SimMem::Hbm2e,
            capacity: 2,
            seed: 0xBEEF,
            completions: 2997,
            stream_hash: 0xF2D353343DDBCF3A,
            mem_hash: 0x3B04FE3D455B8B6C,
            fetched: 2550,
            written: 2186,
            cycle: 6285,
        },
        Golden {
            kind: SimMem::Ddr4,
            capacity: 8,
            seed: 0x5EED,
            completions: 1109,
            stream_hash: 0xB4BF58B4B57C49B6,
            mem_hash: 0xF4938DC8AD84B48B,
            fetched: 867,
            written: 757,
            cycle: 6756,
        },
    ];
    for g in golden {
        let words = 4096u64;
        let mut ag = AddressGenerator::new(DramModel::new(g.kind), words as usize, g.capacity);
        let mut rng = TraceRng::new(g.seed);
        let mut hash = FNV_OFFSET;
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let drain = |ag: &mut AddressGenerator, hash: &mut u64, completed: &mut u64| {
            for r in ag.tick().iter() {
                fnv(hash, r.tag);
                fnv(hash, r.value.to_bits() as u64);
                fnv(hash, r.cycle);
                *completed += 1;
            }
        };
        for _ in 0..6000u64 {
            if submitted - completed < 64 && rng.below(2) == 0 {
                let addr = rng.below(words);
                let op = match rng.below(6) {
                    0 => RmwOp::Read,
                    1 => RmwOp::AddF,
                    2 => RmwOp::Write,
                    3 => RmwOp::MinReportChanged,
                    4 => RmwOp::TestAndSet,
                    _ => RmwOp::SubF,
                };
                ag.submit(DramAccess {
                    addr,
                    op,
                    operand: rng.below(100) as f32 * 0.5,
                    tag: submitted,
                });
                submitted += 1;
            }
            drain(&mut ag, &mut hash, &mut completed);
        }
        for _ in 0..200_000u64 {
            if ag.is_idle() && completed == submitted {
                break;
            }
            drain(&mut ag, &mut hash, &mut completed);
        }
        ag.flush();
        for _ in 0..200_000u64 {
            if ag.is_idle() {
                break;
            }
            drain(&mut ag, &mut hash, &mut completed);
        }
        let mut mem_hash = FNV_OFFSET;
        for w in 0..words {
            fnv(&mut mem_hash, ag.peek(w).to_bits() as u64);
        }
        let label = format!("{:?}/cap{}", g.kind, g.capacity);
        assert_eq!(completed, g.completions, "{label} completion count drifted");
        assert_eq!(hash, g.stream_hash, "{label} completion stream drifted");
        assert_eq!(mem_hash, g.mem_hash, "{label} final memory drifted");
        assert_eq!(
            ag.bursts_fetched(),
            g.fetched,
            "{label} fetch count drifted"
        );
        assert_eq!(
            ag.bursts_written(),
            g.written,
            "{label} writeback count drifted"
        );
        assert_eq!(ag.cycle(), g.cycle, "{label} drain cycle drifted");
    }
}

/// Golden pins for the butterfly shuffle network, routed both through
/// the owning `route` wrapper and the borrow-based `route_ref` with a
/// single reused scratch across all three merge-shift modes. Captured
/// from the pre-refactor clone-per-stage implementation.
#[test]
fn butterfly_route_is_bit_identical_to_golden() {
    use capstan::arch::shuffle::{
        ButterflyNetwork, MergeShift, RouteScratch, ShuffleConfig, ShuffleEntry, ShuffleVector,
    };
    use capstan::arch::spmu::driver::TraceRng;

    // (shift, cycles, bypassed, total entries, per-port hash)
    let golden = [
        (MergeShift::None, 59u64, 117u64, 1869u64, 0x90356930C5EAA85B),
        (MergeShift::One, 31, 117, 1869, 0x30C240941486474B),
        (MergeShift::Full, 28, 117, 1869, 0xC9ED474EB83548CA),
    ];
    let mut scratch = RouteScratch::default();
    for (shift, cycles, bypassed, entries, ports_hash) in golden {
        let cfg = ShuffleConfig {
            shift,
            ..Default::default()
        };
        let mut rng = TraceRng::new(0x0DD_BA11);
        let streams: Vec<Vec<ShuffleVector>> = (0..cfg.ports)
            .map(|_| {
                (0..24)
                    .map(|_| {
                        (0..cfg.lanes)
                            .map(|l| {
                                (rng.below(3) == 0).then(|| ShuffleEntry {
                                    dest: rng.below(cfg.ports as u64) as u32,
                                    lane: l,
                                })
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let net = ButterflyNetwork::new(cfg);
        let owned = net.route(&streams);
        let refs: Vec<Vec<&ShuffleVector>> = streams.iter().map(|s| s.iter().collect()).collect();
        let borrowed = net.route_ref(&refs, &mut scratch).clone();
        assert_eq!(owned, borrowed, "route and route_ref diverged");
        let mut hash = FNV_OFFSET;
        for (v, e) in owned.delivered_vectors.iter().zip(&owned.delivered_entries) {
            fnv(&mut hash, *v);
            fnv(&mut hash, *e);
        }
        let name = shift.name();
        assert_eq!(owned.cycles, cycles, "{name} cycles drifted");
        assert_eq!(owned.bypassed, bypassed, "{name} bypass count drifted");
        assert_eq!(
            owned.delivered_entries.iter().sum::<u64>(),
            entries,
            "{name} delivered entries drifted"
        );
        assert_eq!(hash, ports_hash, "{name} per-port delivery drifted");
    }
}

/// Golden pins for a network-heavy (shuffle-routed) end-to-end
/// simulation: edge-centric PageRank on a power-law web graph pushes
/// remote updates through the butterfly model, so the Network component
/// is nonzero and exercises `route_ref` inside `network_excess`.
#[test]
fn network_heavy_simulate_is_bit_identical_to_golden() {
    let g = Dataset::WebStanford.generate_scaled(0.02);
    let app = capstan::apps::pagerank::PrEdge::new(&g);
    let wl = app.build(&CapstanConfig::paper_default());
    // (memory, cycles, [active, scan, ls, vl, imb, net, sram, dram], util bits)
    let golden = [
        (
            MemoryKind::Hbm2e,
            866u64,
            [102u64, 0, 90, 0, 221, 147, 306, 0],
            0x3FD8CA99ADD0B565u64,
        ),
        (
            MemoryKind::Ddr4,
            4406,
            [102, 0, 90, 0, 221, 147, 306, 3540],
            0x3FD8CA99ADD0B565,
        ),
    ];
    for (mem, cycles, breakdown, util_bits) in golden {
        let r = simulate(&wl, &CapstanConfig::new(mem));
        let b = r.breakdown;
        assert_eq!(
            (
                r.cycles,
                [
                    b.active,
                    b.scan,
                    b.load_store,
                    b.vector_length,
                    b.imbalance,
                    b.network,
                    b.sram,
                    b.dram
                ]
            ),
            (cycles, breakdown),
            "pr_edge_web/{mem:?} drifted"
        );
        assert!(b.network > 0, "workload must exercise the network path");
        assert_eq!(r.sram_bank_utilization.to_bits(), util_bits);
    }
}

/// Golden pins for the banked cycle-level DRAM channel
/// (`MemTiming::CycleLevel`'s timing hook): a deterministic mixed
/// stream (sequential runs interrupted by scattered bursts) must
/// reproduce the exact completion sequence — `(tag, cycle)` hashed in
/// order — plus the row/contention counters, on two memory configs.
/// Captured via `examples/golden_capture_cyclemem.rs`.
#[test]
fn banked_channel_completion_stream_is_bit_identical_to_golden() {
    use capstan::arch::spmu::driver::TraceRng;
    use capstan::sim::channel::MemChannel;
    use capstan::sim::dram::{
        BankTiming, BankedDramChannel, BurstRequest, DramModel, MemoryKind as SimMem, BURST_BYTES,
    };

    struct Golden {
        kind: SimMem,
        seed: u64,
        stream_hash: u64,
        cycle: u64,
        row_hits: u64,
        row_conflicts: u64,
        contention: u64,
        busy: u64,
        peak_q: usize,
    }
    let golden = [
        Golden {
            kind: SimMem::Ddr4,
            seed: 0x00C1_C1E0,
            stream_hash: 0xF0F48A42E2CCAAF9,
            cycle: 8075,
            row_hits: 1180,
            row_conflicts: 1804,
            contention: 4_375_654,
            busy: 112_140,
            peak_q: 64,
        },
        Golden {
            kind: SimMem::Hbm2e,
            seed: 0x00C1_C1E1,
            stream_hash: 0xB6489EE1B418DD63,
            cycle: 4635,
            row_hits: 1206,
            row_conflicts: 1778,
            contention: 37,
            busy: 4794,
            peak_q: 9,
        },
    ];
    for g in golden {
        let model = DramModel::new(g.kind);
        let mut ch = BankedDramChannel::new(model, BankTiming::for_model(&model));
        let mut rng = TraceRng::new(g.seed);
        let mut hash = FNV_OFFSET;
        let mut pushed = 0u64;
        let mut completed = 0u64;
        let mut seq = 0u64;
        let total = 3000u64;
        for _ in 0..2_000_000u64 {
            if pushed < total && rng.below(3) != 0 {
                let burst = if rng.below(4) == 0 {
                    rng.below(1 << 16)
                } else {
                    seq += 1;
                    seq
                };
                let req = BurstRequest {
                    addr: burst * BURST_BYTES,
                    is_write: rng.below(4) == 0,
                    tag: pushed,
                };
                if ch.push(req).is_ok() {
                    pushed += 1;
                }
            }
            for c in ch.tick() {
                fnv(&mut hash, c.tag);
                fnv(&mut hash, c.cycle);
                completed += 1;
            }
            if pushed == total && ch.is_idle() {
                break;
            }
        }
        let label = format!("{:?}", g.kind);
        assert_eq!(completed, total, "{label} lost completions");
        assert_eq!(hash, g.stream_hash, "{label} completion stream drifted");
        assert_eq!(ch.cycle(), g.cycle, "{label} drain cycle drifted");
        let s = ch.stats();
        assert_eq!(s.row_hits, g.row_hits, "{label} row hits drifted");
        assert_eq!(
            s.row_conflicts, g.row_conflicts,
            "{label} row conflicts drifted"
        );
        assert_eq!(
            s.contention_cycles, g.contention,
            "{label} contention drifted"
        );
        assert_eq!(s.bank_busy_cycles, g.busy, "{label} occupancy drifted");
        assert_eq!(s.peak_bank_queue, g.peak_q, "{label} peak queue drifted");
    }
}

/// Golden pins for an atomic-heavy end-to-end simulate under the
/// cycle-level memory mode: edge-centric PageRank with the shuffle
/// network removed (Table 11's "None" column) pushes every cross-tile
/// update through DRAM atomics, exercising the AG slab behind
/// `MemSysSim`. Captured via `examples/golden_capture_cyclemem.rs`.
#[test]
fn cycle_level_atomic_pagerank_is_bit_identical_to_golden() {
    use capstan::core::config::MemTiming;

    let g = Dataset::WebStanford.generate_scaled(0.02);
    let app = capstan::apps::pagerank::PrEdge::new(&g);
    let mk = |memory| {
        let mut cfg = CapstanConfig::new(memory);
        cfg.shuffle = None;
        cfg.mem_timing = MemTiming::CycleLevel;
        cfg
    };
    let wl = app.build(&mk(MemoryKind::Hbm2e));
    // (memory, cycles, [active, scan, ls, vl, imb, net, sram, dram],
    //  mem cycles, row conflicts, contention, ag fetched, ag written)
    struct Golden {
        memory: MemoryKind,
        cycles: u64,
        breakdown: [u64; 8],
        mem_cycles: u64,
        row_conflicts: u64,
        contention: u64,
        ag_fetched: u64,
        ag_written: u64,
    }
    let golden = [
        Golden {
            memory: MemoryKind::Hbm2e,
            cycles: 23_210,
            breakdown: [102, 0, 90, 0, 221, 0, 306, 22_491],
            mem_cycles: 23_210,
            row_conflicts: 688,
            contention: 8485,
            ag_fetched: 36_881,
            ag_written: 36_881,
        },
        Golden {
            memory: MemoryKind::Ddr4,
            cycles: 294_504,
            breakdown: [102, 0, 90, 0, 221, 0, 306, 293_785],
            mem_cycles: 294_504,
            row_conflicts: 688,
            contention: 3_922_515,
            ag_fetched: 36_790,
            ag_written: 36_790,
        },
    ];
    for g in golden {
        let r = simulate(&wl, &mk(g.memory));
        let b = r.breakdown;
        assert_eq!(
            (
                r.cycles,
                [
                    b.active,
                    b.scan,
                    b.load_store,
                    b.vector_length,
                    b.imbalance,
                    b.network,
                    b.sram,
                    b.dram
                ]
            ),
            (g.cycles, g.breakdown),
            "pr_edge_atomics/{:?} drifted",
            g.memory
        );
        let m = r.mem.expect("cycle mode surfaces stats");
        assert_eq!(m.cycles, g.mem_cycles, "{:?} mem cycles drifted", g.memory);
        assert_eq!(
            m.row_conflicts, g.row_conflicts,
            "{:?} row conflicts drifted",
            g.memory
        );
        assert_eq!(
            m.contention_cycles, g.contention,
            "{:?} contention drifted",
            g.memory
        );
        assert_eq!(
            (m.ag_bursts_fetched, m.ag_bursts_written),
            (g.ag_fetched, g.ag_written),
            "{:?} AG burst counts drifted",
            g.memory
        );
        assert!(m.atomic_words > 0, "workload must exercise the atomic path");
    }
}

/// Golden pins for the *recorded-address* cycle-level mode
/// (`CapstanConfig::mem_addresses = Recorded`): the same shuffle-less
/// PR-Edge workload as the synthetic pins above, but the DRAM-atomic
/// fallback replays the recorder's real sampled destination vertices —
/// power-law hubs revisit open bursts, so the AGs fetch less than half
/// the bursts and the drain is 1.7–2.2x faster than the uniform
/// synthetic spray. Captured via `examples/golden_capture_cyclemem.rs`
/// (the `+rec` rows).
#[test]
fn recorded_address_pagerank_is_bit_identical_to_golden() {
    use capstan::core::config::{MemAddressing, MemTiming};

    let g = Dataset::WebStanford.generate_scaled(0.02);
    let app = capstan::apps::pagerank::PrEdge::new(&g);
    let mk = |memory| {
        let mut cfg = CapstanConfig::new(memory);
        cfg.shuffle = None;
        cfg.mem_timing = MemTiming::CycleLevel;
        cfg.mem_addresses = MemAddressing::Recorded;
        cfg
    };
    let wl = app.build(&mk(MemoryKind::Hbm2e));
    struct Golden {
        memory: MemoryKind,
        cycles: u64,
        dram: u64,
        mem_cycles: u64,
        row_conflicts: u64,
        contention: u64,
        ag_fetched: u64,
        ag_written: u64,
    }
    let golden = [
        Golden {
            memory: MemoryKind::Hbm2e,
            cycles: 13_263,
            dram: 12_544,
            mem_cycles: 13_263,
            row_conflicts: 688,
            contention: 9862,
            ag_fetched: 17_074,
            ag_written: 17_074,
        },
        Golden {
            memory: MemoryKind::Ddr4,
            cycles: 136_776,
            dram: 136_057,
            mem_cycles: 136_776,
            row_conflicts: 688,
            contention: 3_922_503,
            ag_fetched: 17_074,
            ag_written: 17_074,
        },
    ];
    for g in golden {
        let r = simulate(&wl, &mk(g.memory));
        let b = r.breakdown;
        assert_eq!(
            (r.cycles, b.dram),
            (g.cycles, g.dram),
            "pr_edge_recorded/{:?} drifted",
            g.memory
        );
        // The non-DRAM components must match the synthetic-mode pins:
        // recorded addressing only changes where scattered words land.
        assert_eq!(
            [
                b.active,
                b.scan,
                b.load_store,
                b.vector_length,
                b.imbalance,
                b.network,
                b.sram
            ],
            [102, 0, 90, 0, 221, 0, 306],
            "pr_edge_recorded/{:?} non-DRAM components drifted",
            g.memory
        );
        let m = r.mem.expect("cycle mode surfaces stats");
        assert_eq!(m.cycles, g.mem_cycles, "{:?} mem cycles drifted", g.memory);
        assert_eq!(
            (m.row_conflicts, m.contention_cycles),
            (g.row_conflicts, g.contention),
            "{:?} channel counters drifted",
            g.memory
        );
        assert_eq!(
            (m.ag_bursts_fetched, m.ag_bursts_written),
            (g.ag_fetched, g.ag_written),
            "{:?} AG burst counts drifted",
            g.memory
        );
    }
}

#[test]
fn repeated_runs_are_identical() {
    // Same seed, same everything: the engine must be a pure function.
    let a = measure_random_throughput(SpmuConfig::default(), 7, 300, 1200);
    let b = measure_random_throughput(SpmuConfig::default(), 7, 300, 1200);
    assert_eq!(a.bank_utilization.to_bits(), b.bank_utilization.to_bits());
    assert_eq!(a.requests, b.requests);
}
