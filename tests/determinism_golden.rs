//! Golden determinism regression tests.
//!
//! These values were captured from the pre-refactor simulator (the naive
//! allocate-per-tick loop) via `examples/golden_capture.rs`. The
//! scratch-buffer refactor of `Spmu::tick` must be a pure performance
//! change: every measurement here has to stay **bit-identical** —
//! utilizations are compared by `f64::to_bits`, not tolerance.

use capstan::apps::App;
use capstan::arch::spmu::driver::{measure_random_throughput, run_vectors};
use capstan::arch::spmu::{AccessVector, OrderingMode, SpmuConfig};
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::core::perf::simulate;
use capstan::tensor::gen::Dataset;

#[test]
fn random_throughput_is_bit_identical_to_golden() {
    let golden: &[(OrderingMode, u64, u64)] = &[
        (OrderingMode::Unordered, 0x3FE9AE5604189375, 25_680),
        (OrderingMode::AddressOrdered, 0x3FD3E9FBE76C8B44, 9_936),
        (OrderingMode::FullyOrdered, 0x3FD030A3D70A3D71, 8_080),
        (OrderingMode::Arbitrated, 0x3FD4C395810624DD, 10_384),
    ];
    for &(ordering, util_bits, requests) in golden {
        let cfg = SpmuConfig {
            ordering,
            ..Default::default()
        };
        let r = measure_random_throughput(cfg, 42, 500, 2000);
        assert_eq!(
            r.bank_utilization.to_bits(),
            util_bits,
            "{ordering:?} utilization drifted: {:.6}",
            r.bank_utilization
        );
        assert_eq!(r.requests, requests, "{ordering:?} request count drifted");
        assert_eq!(r.cycles, 2000);
    }
}

#[test]
fn run_vectors_is_bit_identical_to_golden() {
    let vectors: Vec<AccessVector> = (0..64)
        .map(|i| {
            AccessVector::reads(
                &(0..16u32)
                    .map(|l| (i * 97 + l * 13) % 4096)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let r = run_vectors(SpmuConfig::default(), &vectors);
    assert_eq!(r.bank_utilization.to_bits(), 0x3FE745D1745D1746);
    assert_eq!(r.requests, 1024);
    assert_eq!(r.cycles, 88);
}

#[test]
fn perf_simulate_is_bit_identical_to_golden() {
    // (dataset, memory, cycles, [active, scan, ls, vl, imb, net, sram, dram], util bits)
    struct Golden {
        dataset: Dataset,
        memory: MemoryKind,
        cycles: u64,
        breakdown: [u64; 8],
        util_bits: u64,
    }
    let golden = [
        Golden {
            dataset: Dataset::Ckt11752,
            memory: MemoryKind::Hbm2e,
            cycles: 122,
            breakdown: [26, 0, 38, 0, 5, 0, 4, 49],
            util_bits: 0x3FD7267E366968C1,
        },
        Golden {
            dataset: Dataset::Ckt11752,
            memory: MemoryKind::Ddr4,
            cycles: 3226,
            breakdown: [26, 0, 38, 0, 5, 0, 4, 3153],
            util_bits: 0x3FD7267E366968C1,
        },
        Golden {
            dataset: Dataset::Trefethen20000,
            memory: MemoryKind::Hbm2e,
            cycles: 120,
            breakdown: [29, 0, 34, 0, 0, 0, 3, 54],
            util_bits: 0x3FE030A8C81C123F,
        },
        Golden {
            dataset: Dataset::Trefethen20000,
            memory: MemoryKind::Ddr4,
            cycles: 3162,
            breakdown: [29, 0, 34, 0, 0, 0, 3, 3096],
            util_bits: 0x3FE030A8C81C123F,
        },
    ];
    for g in golden {
        let app = capstan::apps::spmv::CsrSpmv::new(&g.dataset.generate_scaled(0.04));
        let wl = app.build(&CapstanConfig::paper_default());
        let r = simulate(&wl, &CapstanConfig::new(g.memory));
        let b = r.breakdown;
        assert_eq!(
            (
                r.cycles,
                [
                    b.active,
                    b.scan,
                    b.load_store,
                    b.vector_length,
                    b.imbalance,
                    b.network,
                    b.sram,
                    b.dram
                ]
            ),
            (g.cycles, g.breakdown),
            "{:?}/{:?} drifted",
            g.dataset,
            g.memory
        );
        assert_eq!(r.sram_bank_utilization.to_bits(), g.util_bits);
    }
}

#[test]
fn repeated_runs_are_identical() {
    // Same seed, same everything: the engine must be a pure function.
    let a = measure_random_throughput(SpmuConfig::default(), 7, 300, 1200);
    let b = measure_random_throughput(SpmuConfig::default(), 7, 300, 1200);
    assert_eq!(a.bank_utilization.to_bits(), b.bank_utilization.to_bits());
    assert_eq!(a.requests, b.requests);
}
