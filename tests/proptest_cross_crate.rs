//! Cross-crate property tests: format round trips through the
//! architecture and programming model, scanner/hardware equivalence, and
//! executor-vs-reference equality on random inputs.

use capstan::arch::scanner::{BitVecScanner, ScanMode};
use capstan::arch::spmu::driver::run_vectors;
use capstan::arch::spmu::{AccessVector, LaneRequest, RmwOp, Spmu, SpmuConfig};
use capstan::core::config::CapstanConfig;
use capstan::tensor::bitvec::BitVec;
use capstan::tensor::{Coo, Csc, Csr};
use proptest::prelude::*;

fn triplet_strategy(n: usize) -> impl Strategy<Value = Vec<(u32, u32, f32)>> {
    prop::collection::vec(
        (0..n as u32, 0..n as u32, -4.0f32..4.0).prop_map(|(r, c, v)| {
            // Keep values bounded away from 0 so dedup-summing can't
            // produce explicit zeros that change nnz counts.
            (r, c, if v >= 0.0 { v + 0.25 } else { v - 0.25 })
        }),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn format_round_trips(triplets in triplet_strategy(64)) {
        let coo = Coo::from_triplets(64, 64, triplets).unwrap();
        let csr = Csr::from_coo(&coo);
        let csc = Csc::from_coo(&coo);
        prop_assert_eq!(csr.to_coo(), coo.clone());
        prop_assert_eq!(csc.to_coo(), coo.clone());
        prop_assert_eq!(Csr::from_coo(&csc.to_coo()), csr);
    }

    #[test]
    fn spmv_agrees_across_formats(triplets in triplet_strategy(48)) {
        let coo = Coo::from_triplets(48, 48, triplets).unwrap();
        let csr = Csr::from_coo(&coo);
        let csc = Csc::from_coo(&coo);
        let x: Vec<f32> = (0..48).map(|i| (i % 5) as f32 - 2.0).collect();
        let y_csr = csr.spmv(&x);
        let y_csc = csc.spmv(&x);
        for (a, b) in y_csr.iter().zip(&y_csc) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn scanner_equals_naive_set_iteration(
        a_idx in prop::collection::btree_set(0u32..600, 0..64),
        b_idx in prop::collection::btree_set(0u32..600, 0..64),
    ) {
        let a = BitVec::from_indices(600, &a_idx.iter().copied().collect::<Vec<_>>()).unwrap();
        let b = BitVec::from_indices(600, &b_idx.iter().copied().collect::<Vec<_>>()).unwrap();
        let scanner = BitVecScanner::default();
        let (inter, _) = scanner.scan(ScanMode::Intersect, &a, Some(&b));
        let expect: Vec<u32> = a_idx.intersection(&b_idx).copied().collect();
        prop_assert_eq!(inter.iter().map(|e| e.j).collect::<Vec<_>>(), expect);
        let (uni, _) = scanner.scan(ScanMode::Union, &a, Some(&b));
        let expect: Vec<u32> = a_idx.union(&b_idx).copied().collect();
        prop_assert_eq!(uni.iter().map(|e| e.j).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn spmu_rmw_results_match_functional_model(
        addrs in prop::collection::vec(0u32..512, 1..48),
    ) {
        // Apply AddF(1.0) to a stream of addresses through the cycle
        // simulator; final memory must equal the multiset count.
        let vectors: Vec<AccessVector> = addrs
            .chunks(16)
            .map(|chunk| {
                AccessVector::new(
                    chunk
                        .iter()
                        .map(|&a| Some(LaneRequest::rmw(a, RmwOp::AddF, 1.0)))
                        .collect(),
                )
            })
            .collect();
        let mut spmu = Spmu::new(SpmuConfig::default());
        let mut pending: Option<&AccessVector> = None;
        let mut iter = vectors.iter();
        for _ in 0..10_000 {
            if pending.is_none() {
                pending = iter.next();
            }
            if let Some(v) = pending.take() {
                if !spmu.try_enqueue(v) {
                    pending = Some(v);
                }
            }
            spmu.tick();
            if pending.is_none() && spmu.is_idle() && iter.len() == 0 {
                break;
            }
        }
        for &a in &addrs {
            let count = addrs.iter().filter(|&&x| x == a).count() as f32;
            prop_assert_eq!(spmu.peek(a), count, "addr {}", a);
        }
    }

    #[test]
    fn spmu_ordering_modes_preserve_request_count(
        addrs in prop::collection::vec(0u32..4096, 16..64),
    ) {
        use capstan::arch::spmu::OrderingMode;
        let vectors: Vec<AccessVector> =
            addrs.chunks(16).map(AccessVector::reads).collect();
        let baseline = run_vectors(SpmuConfig::default(), &vectors).requests;
        for mode in [OrderingMode::AddressOrdered, OrderingMode::FullyOrdered, OrderingMode::Arbitrated] {
            let cfg = SpmuConfig {
                ordering: mode,
                ..Default::default()
            };
            let result = run_vectors(cfg, &vectors);
            prop_assert_eq!(result.requests, baseline, "{:?}", mode);
        }
    }

    #[test]
    fn recorded_spmv_matches_reference_on_random_matrices(
        triplets in triplet_strategy(64),
    ) {
        let coo = Coo::from_triplets(64, 64, triplets).unwrap();
        let app = capstan::apps::spmv::CsrSpmv::new(&coo);
        let cfg = CapstanConfig::paper_default();
        let (_, y) = app.record(&cfg);
        let reference = app.reference();
        for (a, b) in y.iter().zip(&reference) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn bcsr_spmv_agrees_with_csr_for_any_block_size(
        triplets in triplet_strategy(64),
        block in prop::sample::select(vec![2usize, 4, 8, 16, 32]),
    ) {
        let coo = Coo::from_triplets(64, 64, triplets).unwrap();
        let cfg = CapstanConfig::paper_default();
        let bcsr = capstan::apps::spmv::BcsrSpmv::new(&coo, block);
        let (_, y_bcsr) = bcsr.record(&cfg);
        let y_csr = capstan::apps::spmv::CsrSpmv::new(&coo).reference();
        for (a, b) in y_bcsr.iter().zip(&y_csr) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "block {}", block);
        }
    }

    #[test]
    fn dcsr_spmv_agrees_with_csr_on_random_matrices(
        triplets in triplet_strategy(64),
    ) {
        let coo = Coo::from_triplets(64, 64, triplets).unwrap();
        let cfg = CapstanConfig::paper_default();
        let (_, y_dcsr) = capstan::apps::spmv::DcsrSpmv::new(&coo).record(&cfg);
        let y_csr = capstan::apps::spmv::CsrSpmv::new(&coo).reference();
        for (a, b) in y_dcsr.iter().zip(&y_csr) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn recorded_spmm_matches_reference_on_random_inputs(
        triplets in triplet_strategy(48),
        features in 1usize..24,
    ) {
        let coo = Coo::from_triplets(48, 48, triplets).unwrap();
        let b = capstan::tensor::DenseMatrix::from_fn(48, features, |r, c| {
            ((r * 5 + c * 3) % 7) as f32 - 3.0
        });
        let app = capstan::apps::gnn::Spmm::new(&coo, b);
        let cfg = CapstanConfig::paper_default();
        let (_, out) = app.record(&cfg);
        let reference = app.reference();
        for (a, b) in out.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn cg_converges_on_random_diagonally_dominant_systems(
        triplets in triplet_strategy(40),
    ) {
        // Symmetrize and make strictly diagonally dominant => SPD.
        let coo = Coo::from_triplets(40, 40, triplets).unwrap();
        let mut entries: Vec<(u32, u32, f32)> = Vec::new();
        let mut row_abs = [0.0f32; 40];
        for (r, c, v) in coo.iter() {
            if r != c {
                entries.push((r, c, v / 2.0));
                entries.push((c, r, v / 2.0));
                row_abs[r as usize] += (v / 2.0).abs();
                row_abs[c as usize] += (v / 2.0).abs();
            }
        }
        for i in 0..40u32 {
            entries.push((i, i, 1.0 + 2.0 * row_abs[i as usize]));
        }
        let spd = Coo::from_triplets(40, 40, entries).unwrap();
        let mut cg = capstan::apps::cg::ConjugateGradient::new(&spd);
        cg.iterations = 24;
        let result = cg.reference();
        prop_assert!(!result.residuals.is_empty());
        let first = result.residuals.first().unwrap();
        let last = result.residuals.last().unwrap();
        prop_assert!(last <= first, "residual grew: {} -> {}", first, last);
        // Recorded execution is bit-identical in algorithm terms.
        let (_, recorded) = cg.record(&CapstanConfig::paper_default());
        prop_assert_eq!(recorded.residuals.len(), result.residuals.len());
    }

    #[test]
    fn mm_write_read_round_trip(triplets in triplet_strategy(32)) {
        let coo = Coo::from_triplets(32, 32, triplets).unwrap();
        let mut buf = Vec::new();
        capstan::tensor::mm::write(&mut buf, &coo).unwrap();
        let back = capstan::tensor::mm::read(buf.as_slice()).unwrap();
        prop_assert_eq!(back.rows(), coo.rows());
        prop_assert_eq!(back.cols(), coo.cols());
        prop_assert_eq!(back.nnz(), coo.nnz());
        for ((r1, c1, v1), (r2, c2, v2)) in back.iter().zip(coo.iter()) {
            prop_assert_eq!((r1, c1), (r2, c2));
            prop_assert!((v1 - v2).abs() < 1e-4 * (1.0 + v2.abs()));
        }
    }

    #[test]
    fn elision_changes_timing_but_never_results(
        addrs in prop::collection::vec(0u32..32, 16..48),
    ) {
        // Seed distinct memory, then read an alias-heavy stream with
        // elision on and off: returned values must be identical (elision
        // is a performance optimization only, paper §3.1.2).
        let read_results = |elide: bool| -> Vec<Vec<Option<f32>>> {
            let cfg = SpmuConfig {
                elide_repeated_reads: elide,
                ..Default::default()
            };
            let mut spmu = Spmu::new(cfg);
            for a in 0u32..32 {
                spmu.poke(a, a as f32 * 3.0 + 1.0);
            }
            let vectors: Vec<AccessVector> =
                addrs.chunks(16).map(AccessVector::reads).collect();
            let mut out: Vec<(u64, Vec<Option<f32>>)> = Vec::new();
            let mut iter = vectors.iter();
            let mut pending: Option<&AccessVector> = None;
            for _ in 0..10_000 {
                if pending.is_none() {
                    pending = iter.next();
                }
                let exhausted = pending.is_none();
                if let Some(v) = pending.take() {
                    if !spmu.try_enqueue(v) {
                        pending = Some(v);
                    }
                }
                if let Some(c) = spmu.tick() {
                    out.push((c.id, c.results.clone()));
                }
                if exhausted && pending.is_none() && spmu.is_idle() {
                    break;
                }
            }
            out.sort_by_key(|(id, _)| *id);
            out.into_iter().map(|(_, r)| r).collect()
        };
        prop_assert_eq!(read_results(true), read_results(false));
    }
}
