//! Differential invariants for multi-tenant memory traffic.
//!
//! The tenant-aware driver (`capstan_arch::memdrv`) interleaves N
//! tenants' replay buffers through one cycle-level memory system. Four
//! contracts pin it down:
//!
//! * **Single-tenant identity**: `tenants = 1` must reproduce the
//!   pre-tenant driver bit-for-bit — same stats, same snapshot bytes,
//!   same end-to-end `PerfReport` — whether the traffic arrives through
//!   the legacy `add_tile` API or the explicit `TenantId(0)` one. Every
//!   committed golden pin rides on this.
//! * **Dedicated isolation**: under `TenantPartition::Dedicated` each
//!   tenant owns a private channel group, so a tenant's entire stat
//!   block is independent of the co-tenant's load.
//! * **Shared contention floor**: shared channels can only add
//!   contention — the combined drain takes at least as long as the
//!   slowest tenant running alone on the same geometry.
//! * **Per-tenant conservation**: every word a tenant submits is
//!   completed and attributed back to that tenant, and the latency
//!   histogram carries exactly the completed count.
//!
//! A proptest additionally pins registration-order independence: tiles
//! registered in any interleaving across tenants (preserving each
//! tenant's own order) produce identical per-tenant stats and identical
//! snapshot bytes.

use capstan::arch::memdrv::{
    MemSysConfig, MemSysSim, TenantId, TenantPartition, TenantStats, TileTraffic,
};
use capstan::core::config::{CapstanConfig, MemTiming, MemoryKind};
use capstan::core::perf::simulate;
use capstan::core::program::{Workload, WorkloadBuilder};
use capstan::sim::dram::DramModel;
use proptest::prelude::*;

/// A one-knob DRAM workload (`tiles` identical tiles), as in
/// `mem_mode_differential.rs`.
fn dram_workload(
    tiles: usize,
    stream_bytes: usize,
    random_words: u64,
    atomic_words: u64,
) -> Workload {
    let mut wl = WorkloadBuilder::new("mt-grid");
    for _ in 0..tiles {
        let mut t = wl.tile();
        t.foreach_vec(256, |_, _| {});
        t.dram_stream_read(stream_bytes);
        t.dram_random_read(random_words);
        t.dram_atomic(atomic_words);
        wl.commit(t);
    }
    wl.finish()
}

fn cycle_cfg(memory: MemoryKind) -> CapstanConfig {
    let mut cfg = CapstanConfig::new(memory);
    cfg.mem_timing = MemTiming::CycleLevel;
    cfg
}

#[test]
fn single_tenant_is_bit_identical_to_the_pre_tenant_driver() {
    // Driver level: the legacy API, the explicit-tenant API, and the
    // explicit 1-tenant config must produce the same stats and the same
    // snapshot bytes after the same mid-run cut.
    let model = DramModel::new(capstan::sim::dram::MemoryKind::Hbm2e);
    let traffic = TileTraffic {
        stream_bursts: 700,
        random_bursts: 500,
        atomic_words: 900,
    };
    let mut reference = MemSysSim::new(model);
    reference.add_tile(traffic);
    let cut = reference.run().cycles / 2;
    let mut legacy = MemSysSim::new(model);
    legacy.add_tile(traffic);
    let mut explicit = MemSysSim::with_config(
        model,
        MemSysConfig::with_tenants(&model, 1, 1, TenantPartition::Shared),
    );
    explicit.add_tile_for(TenantId(0), traffic);
    // Same mid-run snapshot bytes...
    assert!(!legacy.step(cut) && !explicit.step(cut));
    assert_eq!(
        legacy.save_state(),
        explicit.save_state(),
        "mid-run snapshots diverged"
    );
    // ...and the same final stats.
    assert_eq!(legacy.run(), explicit.run());
    assert_eq!(
        legacy.tenant_stats(TenantId(0)),
        explicit.tenant_stats(TenantId(0))
    );
}

#[test]
fn single_tenant_config_is_identical_end_to_end() {
    // `mem_tenants = 1` (the default) vs an explicitly set 1 must be
    // indistinguishable through the full `simulate` stack, and the
    // report's tenant vector must carry the whole traffic.
    let w = dram_workload(8, 1 << 18, 2048, 4096);
    for memory in [MemoryKind::Ddr4, MemoryKind::Hbm2e] {
        let default_cfg = cycle_cfg(memory);
        assert_eq!(default_cfg.mem_tenants, 1, "default must stay 1");
        let mut explicit = default_cfg;
        explicit.mem_tenants = 1;
        let a = simulate(&w, &default_cfg);
        let b = simulate(&w, &explicit);
        assert_eq!(a, b, "{memory:?}: explicit tenants=1 diverged");
        assert_eq!(a.mem_tenants.len(), 1);
        let t = &a.mem_tenants[0];
        assert_eq!(t.submitted, t.completed, "{memory:?}: conservation");
        assert!(t.submitted > 0);
    }
}

#[test]
fn dedicated_partition_isolates_tenants_end_to_end() {
    // Two-tenant dedicated run through `simulate`: tiles alternate
    // between the tenants (the perf engine's round-robin attribution),
    // so changing only the odd tiles' traffic must leave tenant 0's
    // stat block untouched.
    let build = |odd_atomic: u64| {
        let mut wl = WorkloadBuilder::new("mt-iso");
        for i in 0..8u64 {
            let mut t = wl.tile();
            t.foreach_vec(256, |_, _| {});
            if i % 2 == 0 {
                t.dram_stream_read(1 << 16);
                t.dram_random_read(512);
                t.dram_atomic(256);
            } else {
                t.dram_stream_read(1 << 14);
                t.dram_atomic(odd_atomic);
            }
            wl.commit(t);
        }
        wl.finish()
    };
    let mut cfg = cycle_cfg(MemoryKind::Hbm2e);
    cfg.mem_channels = 2;
    cfg.mem_tenants = 2;
    cfg.mem_tenant_partition = TenantPartition::Dedicated;
    let light = simulate(&build(16), &cfg);
    let heavy = simulate(&build(8192), &cfg);
    assert_eq!(
        light.mem_tenants[0], heavy.mem_tenants[0],
        "dedicated tenant 0 must not see tenant 1's load"
    );
    assert_ne!(
        light.mem_tenants[1], heavy.mem_tenants[1],
        "tenant 1's own stats must track its own load"
    );
}

#[test]
fn shared_channels_cost_at_least_the_slowest_tenant_alone() {
    // Contention floor: a tenant running alone on the same 2-tenant
    // shared geometry (co-tenant empty, so every address and seed stays
    // identical) is a lower bound on the combined drain.
    let model = DramModel::new(capstan::sim::dram::MemoryKind::Hbm2e);
    let a = TileTraffic {
        stream_bursts: 500,
        random_bursts: 800,
        atomic_words: 1200,
    };
    let b = TileTraffic {
        stream_bursts: 2500,
        random_bursts: 200,
        atomic_words: 100,
    };
    let cfg = MemSysConfig::with_tenants(&model, 2, 2, TenantPartition::Shared);
    let alone = |tenant: usize, traffic: TileTraffic| {
        let mut sim = MemSysSim::with_config(model, cfg);
        sim.add_tile_for(TenantId(tenant), traffic);
        sim.run().cycles
    };
    let mut both = MemSysSim::with_config(model, cfg);
    both.add_tile_for(TenantId(0), a);
    both.add_tile_for(TenantId(1), b);
    let combined = both.run().cycles;
    let floor = alone(0, a).max(alone(1, b));
    assert!(
        combined >= floor,
        "shared drain {combined} beat the slowest-alone floor {floor}"
    );
}

#[test]
fn per_tenant_served_words_are_conserved_end_to_end() {
    // Every word a tenant's tiles queue must come back attributed to
    // that tenant, for 2 and 3 tenants, shared and dedicated.
    let w = dram_workload(9, 1 << 15, 1024, 2048);
    for (tenants, channels, partition) in [
        (2usize, 1usize, TenantPartition::Shared),
        (2, 4, TenantPartition::Dedicated),
        (3, 1, TenantPartition::Shared),
        (3, 3, TenantPartition::Dedicated),
    ] {
        let mut cfg = cycle_cfg(MemoryKind::Hbm2e);
        cfg.mem_channels = channels;
        cfg.mem_tenants = tenants;
        cfg.mem_tenant_partition = partition;
        let r = simulate(&w, &cfg);
        assert_eq!(r.mem_tenants.len(), tenants);
        let mut total = 0u64;
        for (t, s) in r.mem_tenants.iter().enumerate() {
            assert_eq!(
                s.submitted, s.completed,
                "{partition:?}/{tenants}: tenant {t} conservation"
            );
            assert_eq!(
                s.queued_stream_bursts + s.queued_random_bursts + s.queued_atomic_words,
                s.submitted,
                "{partition:?}/{tenants}: tenant {t} queued == submitted"
            );
            assert_eq!(s.latency_hist.iter().sum::<u64>(), s.completed);
            total += s.completed;
        }
        let m = r.mem.expect("cycle mode surfaces stats");
        assert_eq!(
            total,
            m.stream_bursts + m.random_bursts + m.atomic_words,
            "{partition:?}/{tenants}: tenant stats must partition the traffic"
        );
    }
}

/// Compact generator for a tenant-tagged tile list: each entry is
/// (tenant index, traffic) with small word counts so a proptest case
/// stays fast.
fn tile_list(tenants: usize) -> impl Strategy<Value = Vec<(usize, TileTraffic)>> {
    prop::collection::vec(
        (0..tenants, 0u64..60, 0u64..60, 0u64..60).prop_map(|(t, s, r, a)| {
            (
                t,
                TileTraffic {
                    stream_bursts: s,
                    random_bursts: r,
                    atomic_words: a,
                },
            )
        }),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Registration order across tenants is irrelevant: a stable
    /// re-grouping by tenant (which preserves each tenant's own tile
    /// order) must leave the run — stats, per-tenant stats, snapshot
    /// bytes — bit-identical to the interleaved registration.
    #[test]
    fn interleaved_registration_matches_grouped_registration(
        tiles in tile_list(3),
        partition_dedicated in any::<bool>(),
    ) {
        let model = DramModel::new(capstan::sim::dram::MemoryKind::Hbm2e);
        let partition = if partition_dedicated {
            TenantPartition::Dedicated
        } else {
            TenantPartition::Shared
        };
        let cfg = MemSysConfig::with_tenants(&model, 3, 3, partition);
        let run_order = |order: &[(usize, TileTraffic)]| {
            let mut sim = MemSysSim::with_config(model, cfg);
            for &(t, traffic) in order {
                sim.add_tile_for(TenantId(t), traffic);
            }
            let stats = sim.run();
            let per: Vec<TenantStats> =
                (0..3).map(|t| sim.tenant_stats(TenantId(t))).collect();
            (stats, per, sim.save_state())
        };
        let mut grouped = tiles.clone();
        grouped.sort_by_key(|&(t, _)| t); // stable: within-tenant order kept
        prop_assert_eq!(run_order(&tiles), run_order(&grouped));
    }
}
