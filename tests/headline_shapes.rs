//! Integration tests pinning the paper's headline results ("shape"
//! assertions from DESIGN.md §4): who wins, by roughly what factor, and
//! where the crossovers fall.

use capstan::apps::conv::SparseConv;
use capstan::apps::mpm::MatrixAdd;
use capstan::apps::spmv::{CooSpmv, CscSpmv, CsrSpmv};
use capstan::apps::App;
use capstan::arch::spmu::driver::measure_random_throughput;
use capstan::arch::spmu::{BankHash, OrderingMode, SpmuConfig};
use capstan::baselines::plasticine;
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::tensor::gen::Dataset;

/// Paper §1/§3.1: the allocated SpMU raises random SRAM throughput from
/// ~32% (arbitrated) to ~80%.
#[test]
fn spmu_random_throughput_headline() {
    let unordered = measure_random_throughput(SpmuConfig::default(), 42, 1000, 4000);
    let arb_cfg = SpmuConfig {
        ordering: OrderingMode::Arbitrated,
        ..Default::default()
    };
    let arbitrated = measure_random_throughput(arb_cfg, 42, 1000, 4000);
    assert!(
        (unordered.bank_utilization - 0.80).abs() < 0.06,
        "unordered {:.3} should be ~0.80",
        unordered.bank_utilization
    );
    assert!(
        (arbitrated.bank_utilization - 0.32).abs() < 0.05,
        "arbitrated {:.3} should be ~0.32",
        arbitrated.bank_utilization
    );
    assert!(unordered.bank_utilization / arbitrated.bank_utilization > 2.0);
}

/// Paper Table 4: deeper queues and more priorities help monotonically.
#[test]
fn spmu_depth_and_priority_scaling() {
    let util = |depth: usize, pri: usize| {
        let cfg = SpmuConfig {
            queue_depth: depth,
            priorities: pri,
            ..Default::default()
        };
        measure_random_throughput(cfg, 7, 500, 2500).bank_utilization
    };
    let d8 = util(8, 3);
    let d16 = util(16, 3);
    let d32 = util(32, 3);
    assert!(
        d8 < d16 && d16 < d32,
        "depth scaling broken: {d8:.3} {d16:.3} {d32:.3}"
    );
    let p1 = util(16, 1);
    let p2 = util(16, 2);
    assert!(p1 < p2, "priorities should help: {p1:.3} vs {p2:.3}");
}

/// Paper Table 9 / §3.1: address hashing removes the strided-access
/// pathology that cripples linear banking on Conv.
#[test]
fn hashing_fixes_conv_strides() {
    let app = SparseConv::from_dataset(Dataset::ResNet50L2, 0.2);
    let hashed = app.simulate(&CapstanConfig::paper_default());
    let mut linear_cfg = CapstanConfig::paper_default();
    linear_cfg.spmu.hash = BankHash::Linear;
    let linear = app.simulate(&linear_cfg);
    let slowdown = linear.cycles as f64 / hashed.cycles as f64;
    assert!(
        slowdown > 1.05,
        "linear banking slowdown only {slowdown:.2}x on Conv"
    );
}

/// Paper Table 12: Capstan beats Plasticine on every mapped sparse app,
/// with the biggest factors on the memory-modifying formats.
#[test]
fn capstan_vs_plasticine_ordering() {
    let m = Dataset::Ckt11752.generate_scaled(0.03);
    let hbm = CapstanConfig::new(MemoryKind::Hbm2e);
    let pl = plasticine::config(MemoryKind::Hbm2e);
    let ratio = |app: &dyn App| app.simulate(&pl).cycles as f64 / app.simulate(&hbm).cycles as f64;
    let csr = ratio(&CsrSpmv::new(&m));
    let coo = ratio(&CooSpmv::new(&m));
    let csc = ratio(&CscSpmv::new(&m));
    assert!(csr > 1.5, "CSR {csr:.1}x");
    assert!(coo > 10.0, "COO {coo:.1}x");
    assert!(csc > 10.0, "CSC {csc:.1}x");
    // Updates hurt more than reads (paper: 17x vs 184x/365x).
    assert!(coo > csr && csc > csr);
}

/// Paper Table 12 / Fig. 5a: memory-bound apps track the DDR4/HBM2E
/// bandwidth gap.
#[test]
fn bandwidth_bound_apps_scale_with_memory() {
    let m = Dataset::Trefethen20000.generate_scaled(0.05);
    let app = CsrSpmv::new(&m);
    let hbm = app.simulate(&CapstanConfig::new(MemoryKind::Hbm2e));
    let ddr = app.simulate(&CapstanConfig::new(MemoryKind::Ddr4));
    let ratio = ddr.cycles as f64 / hbm.cycles as f64;
    // The full bandwidth gap is 26.5x; SpMV should realize a large part.
    assert!(ratio > 4.0 && ratio < 30.0, "DDR4/HBM2E ratio {ratio:.1}");
    let hbm2 = app.simulate(&CapstanConfig::new(MemoryKind::Hbm2));
    assert!(hbm2.cycles >= hbm.cycles && hbm2.cycles <= ddr.cycles);
}

/// Paper Fig. 6a: scalar (1-bit) scanning is catastrophic for M+M; the
/// 256-bit design point is within ~25% of the maximal 512-bit scanner.
#[test]
fn scanner_width_headline() {
    let app = MatrixAdd::self_shifted(&Dataset::Ckt11752.generate_scaled(0.03));
    let cycles_at = |width: usize| {
        let mut cfg = CapstanConfig::paper_default();
        cfg.scanner = capstan::arch::scanner::BitVecScanner::new(width, 16.min(width));
        app.simulate(&cfg).cycles as f64
    };
    let maximal = cycles_at(512);
    let chosen = cycles_at(256);
    let scalar = cycles_at(1);
    assert!(
        scalar / maximal > 2.0,
        "scalar scan only {:.2}x slower",
        scalar / maximal
    );
    assert!(
        chosen / maximal < 1.35,
        "256-bit scan {:.2}x off maximal",
        chosen / maximal
    );
}

/// Paper §4.2 / Table 8: +16% area, +12% power, with linear scaling of
/// the overhead under partial sparse provisioning.
#[test]
fn area_power_headline() {
    use capstan::arch::area::{chip_report, ChipConfig};
    let capstan = chip_report(ChipConfig::default());
    let plasticine = chip_report(ChipConfig {
        sparse_fraction: 0.0,
        ..Default::default()
    });
    assert!((capstan.total / plasticine.total - 1.16).abs() < 0.02);
    assert!((capstan.power_w / plasticine.power_w - 1.12).abs() < 0.02);
}

/// Paper Table 10: ordering restrictions cost performance in order
/// unordered <= address-ordered <= fully-ordered (on update-heavy apps).
#[test]
fn ordering_mode_cost_direction() {
    let m = Dataset::Ckt11752.generate_scaled(0.03);
    let app = CooSpmv::new(&m);
    let cycles = |mode: OrderingMode| {
        let mut cfg = CapstanConfig::paper_default();
        cfg.spmu.ordering = mode;
        app.simulate(&cfg).cycles
    };
    let unordered = cycles(OrderingMode::Unordered);
    let addr = cycles(OrderingMode::AddressOrdered);
    let full = cycles(OrderingMode::FullyOrdered);
    assert!(unordered <= addr, "unordered {unordered} vs addr {addr}");
    assert!(unordered < full, "unordered {unordered} vs full {full}");
}
