//! Format exploration: the same SpMV on CSR, COO, and CSC across the
//! paper's three linear-algebra datasets and three memory systems —
//! the experiment behind the left third of the paper's Table 12.
//!
//! ```text
//! cargo run --release --example spmv_formats
//! ```

use capstan::apps::spmv::{CooSpmv, CscSpmv, CsrSpmv};
use capstan::apps::App;
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::tensor::gen::Dataset;

fn main() {
    let datasets = [
        Dataset::Ckt11752,
        Dataset::Trefethen20000,
        Dataset::Bcsstk30,
    ];
    let memories = [MemoryKind::Hbm2e, MemoryKind::Hbm2, MemoryKind::Ddr4];
    println!(
        "{:<16} {:<8} {:>14} {:>14} {:>14}",
        "Dataset", "Memory", "CSR cycles", "COO cycles", "CSC cycles"
    );
    for dataset in datasets {
        let m = dataset.generate_scaled(0.05);
        let csr = CsrSpmv::new(&m);
        let coo = CooSpmv::new(&m);
        let csc = CscSpmv::new(&m);
        for memory in memories {
            let cfg = CapstanConfig::new(memory);
            println!(
                "{:<16} {:<8} {:>14} {:>14} {:>14}",
                dataset.spec().name,
                memory.name(),
                csr.simulate(&cfg).cycles,
                coo.simulate(&cfg).cycles,
                csc.simulate(&cfg).cycles,
            );
        }
    }
    println!();
    println!("Notes (paper §4.4):");
    println!("- CSC wins when the input vector is sparse: it skips whole columns.");
    println!("- COO pays for two random accesses (V[c] read + Out[r] atomic) per non-zero.");
    println!("- The DDR4/HBM2E gap shows how bandwidth-bound SpMV is (Fig. 5a).");
}
