//! Graph analytics on Capstan: PageRank (pull and edge variants), BFS,
//! and SSSP over road-network and power-law graphs, with the stall
//! breakdown that explains why each behaves differently (paper Fig. 7).
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use capstan::apps::bfs::Bfs;
use capstan::apps::pagerank::{PrEdge, PrPull};
use capstan::apps::sssp::Sssp;
use capstan::apps::App;
use capstan::core::config::CapstanConfig;
use capstan::tensor::gen::Dataset;

fn main() {
    let cfg = CapstanConfig::paper_default();
    for dataset in [Dataset::UsRoads, Dataset::WebStanford] {
        let g = dataset.generate_scaled(0.02);
        println!(
            "\n=== {} (scaled): {} nodes, {} edges ===",
            dataset.spec().name,
            g.rows(),
            g.nnz()
        );
        let apps: Vec<Box<dyn App>> = vec![
            Box::new(PrPull::new(&g)),
            Box::new(PrEdge::new(&g)),
            Box::new(Bfs::new(&g)),
            Box::new(Sssp::new(&g)),
        ];
        for app in &apps {
            let report = app.simulate(&cfg);
            println!("{report}");
        }
        // Functional spot checks.
        let bfs = Bfs::new(&g);
        let (_, result) = bfs.record(&cfg);
        let reached = result.dist.iter().filter(|&&d| d != u32::MAX).count();
        println!(
            "BFS reaches {reached}/{} nodes in {} levels",
            g.rows(),
            result
                .dist
                .iter()
                .filter(|&&d| d != u32::MAX)
                .max()
                .unwrap_or(&0)
        );
    }
    println!();
    println!("Paper §4.4: PR-Pull under-vectorizes on low-degree roads; PR-Edge");
    println!("suffers SRAM conflicts on power-law hubs; BFS/SSSP pay network");
    println!("round trips because levels cannot be pipelined.");
}
