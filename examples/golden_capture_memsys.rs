//! One-off capture of memory-subsystem golden values (used to pin the
//! AG slab refactor and the borrow-based butterfly route; see
//! `tests/determinism_golden.rs`).

use capstan::apps::App;
use capstan::arch::ag::{AddressGenerator, DramAccess};
use capstan::arch::shuffle::{ButterflyNetwork, MergeShift, ShuffleConfig, ShuffleEntry};
use capstan::arch::spmu::driver::TraceRng;
use capstan::arch::spmu::RmwOp;
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::core::perf::simulate;
use capstan::sim::dram::DramModel;
use capstan::tensor::gen::Dataset;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv(hash: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Drives an AG with a deterministic mixed-op random stream (capacity
/// pressure forces evictions, writebacks, and read-after-writeback
/// holds), hashing the completion sequence in order.
fn ag_stream(kind: capstan::sim::dram::MemoryKind, capacity: usize, seed: u64) {
    let words = 4096u64;
    let mut ag = AddressGenerator::new(DramModel::new(kind), words as usize, capacity);
    let mut rng = TraceRng::new(seed);
    let mut hash = FNV_OFFSET;
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let drain = |ag: &mut AddressGenerator, hash: &mut u64, completed: &mut u64| {
        for r in ag.tick().iter() {
            fnv(hash, r.tag);
            fnv(hash, r.value.to_bits() as u64);
            fnv(hash, r.cycle);
            *completed += 1;
        }
    };
    for _ in 0..6000u64 {
        // Throttle outstanding work below the channel queue depth so the
        // backpressure-retry path (HashMap-iteration-ordered in the old
        // code) never fires.
        if submitted - completed < 64 && rng.below(2) == 0 {
            let addr = rng.below(words);
            let op = match rng.below(6) {
                0 => RmwOp::Read,
                1 => RmwOp::AddF,
                2 => RmwOp::Write,
                3 => RmwOp::MinReportChanged,
                4 => RmwOp::TestAndSet,
                _ => RmwOp::SubF,
            };
            ag.submit(DramAccess {
                addr,
                op,
                operand: rng.below(100) as f32 * 0.5,
                tag: submitted,
            });
            submitted += 1;
        }
        drain(&mut ag, &mut hash, &mut completed);
    }
    for _ in 0..200_000u64 {
        if ag.is_idle() && completed == submitted {
            break;
        }
        drain(&mut ag, &mut hash, &mut completed);
    }
    ag.flush();
    for _ in 0..200_000u64 {
        if ag.is_idle() {
            break;
        }
        drain(&mut ag, &mut hash, &mut completed);
    }
    let mut mem_hash = FNV_OFFSET;
    for w in 0..words {
        fnv(&mut mem_hash, ag.peek(w).to_bits() as u64);
    }
    println!(
        "ag {:?} cap={capacity} seed={seed:#X}: completions={completed} stream_hash=0x{hash:016X} mem_hash=0x{mem_hash:016X} fetched={} written={} cycle={}",
        kind,
        ag.bursts_fetched(),
        ag.bursts_written(),
        ag.cycle()
    );
}

/// Deterministic random per-port streams for the butterfly network.
fn butterfly_streams(
    ports: usize,
    lanes: usize,
    vectors: usize,
    seed: u64,
) -> Vec<Vec<Vec<Option<ShuffleEntry>>>> {
    let mut rng = TraceRng::new(seed);
    let mut streams: Vec<Vec<Vec<Option<ShuffleEntry>>>> = vec![Vec::new(); ports];
    for stream in streams.iter_mut() {
        for _ in 0..vectors {
            let v: Vec<Option<ShuffleEntry>> = (0..lanes)
                .map(|l| {
                    if rng.below(3) == 0 {
                        Some(ShuffleEntry {
                            dest: rng.below(ports as u64) as u32,
                            lane: l,
                        })
                    } else {
                        None
                    }
                })
                .collect();
            stream.push(v);
        }
    }
    streams
}

fn butterfly_route(shift: MergeShift, seed: u64) {
    let cfg = ShuffleConfig {
        shift,
        ..Default::default()
    };
    let streams = butterfly_streams(cfg.ports, cfg.lanes, 24, seed);
    let net = ButterflyNetwork::new(cfg);
    let r = net.route(&streams);
    let mut hash = FNV_OFFSET;
    for (v, e) in r.delivered_vectors.iter().zip(&r.delivered_entries) {
        fnv(&mut hash, *v);
        fnv(&mut hash, *e);
    }
    println!(
        "route {} seed={seed:#X}: cycles={} bypassed={} entries={} ports_hash=0x{hash:016X}",
        shift.name(),
        r.cycles,
        r.bypassed,
        r.delivered_entries.iter().sum::<u64>()
    );
}

fn main() {
    use capstan::sim::dram::MemoryKind as SimMem;
    ag_stream(SimMem::Ddr4, 4, 0xA6_601D);
    ag_stream(SimMem::Hbm2e, 2, 0xBEEF);
    ag_stream(SimMem::Ddr4, 8, 0x5EED);
    for shift in [MergeShift::None, MergeShift::One, MergeShift::Full] {
        butterfly_route(shift, 0x0DDBA11);
    }
    // Network-heavy (AG/shuffle-bound) end-to-end simulate pins.
    let g = Dataset::WebStanford.generate_scaled(0.02);
    let app = capstan::apps::pagerank::PrEdge::new(&g);
    let wl = app.build(&CapstanConfig::paper_default());
    for (name, cfg) in [
        ("hbm2e", CapstanConfig::new(MemoryKind::Hbm2e)),
        ("ddr4", CapstanConfig::new(MemoryKind::Ddr4)),
    ] {
        let r = simulate(&wl, &cfg);
        println!(
            "simulate pr_edge_web/{name}: cycles={} active={} scan={} ls={} vl={} imb={} net={} sram={} dram={} util_bits=0x{:016X}",
            r.cycles,
            r.breakdown.active,
            r.breakdown.scan,
            r.breakdown.load_store,
            r.breakdown.vector_length,
            r.breakdown.imbalance,
            r.breakdown.network,
            r.breakdown.sram,
            r.breakdown.dram,
            r.sram_bank_utilization.to_bits()
        );
    }
}
