//! One-off capture of golden determinism values (used to pin the
//! scratch-buffer refactor; see `tests/determinism_golden.rs`).

use capstan::apps::App;
use capstan::arch::spmu::driver::{measure_random_throughput, run_vectors};
use capstan::arch::spmu::{AccessVector, OrderingMode, SpmuConfig};
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::core::perf::simulate;
use capstan::tensor::gen::Dataset;

fn main() {
    for (name, ordering) in [
        ("unordered", OrderingMode::Unordered),
        ("addr", OrderingMode::AddressOrdered),
        ("full", OrderingMode::FullyOrdered),
        ("arb", OrderingMode::Arbitrated),
    ] {
        let cfg = SpmuConfig {
            ordering,
            ..Default::default()
        };
        let r = measure_random_throughput(cfg, 42, 500, 2000);
        println!(
            "throughput {name}: util_bits=0x{:016X} requests={} cycles={}",
            r.bank_utilization.to_bits(),
            r.requests,
            r.cycles
        );
    }
    let vectors: Vec<AccessVector> = (0..64)
        .map(|i| {
            AccessVector::reads(
                &(0..16u32)
                    .map(|l| (i * 97 + l * 13) % 4096)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let rv = run_vectors(SpmuConfig::default(), &vectors);
    println!(
        "run_vectors: util_bits=0x{:016X} requests={} cycles={}",
        rv.bank_utilization.to_bits(),
        rv.requests,
        rv.cycles
    );
    for (name, app) in [
        (
            "csr_ckt",
            capstan::apps::spmv::CsrSpmv::new(&Dataset::Ckt11752.generate_scaled(0.04)),
        ),
        (
            "csr_tref",
            capstan::apps::spmv::CsrSpmv::new(&Dataset::Trefethen20000.generate_scaled(0.04)),
        ),
    ] {
        let wl = app.build(&CapstanConfig::paper_default());
        for (mem, cfg) in [
            ("hbm2e", CapstanConfig::new(MemoryKind::Hbm2e)),
            ("ddr4", CapstanConfig::new(MemoryKind::Ddr4)),
        ] {
            let r = simulate(&wl, &cfg);
            println!(
                "simulate {name}/{mem}: cycles={} active={} scan={} ls={} vl={} imb={} net={} sram={} dram={} util_bits=0x{:016X}",
                r.cycles,
                r.breakdown.active,
                r.breakdown.scan,
                r.breakdown.load_store,
                r.breakdown.vector_length,
                r.breakdown.imbalance,
                r.breakdown.network,
                r.breakdown.sram,
                r.breakdown.dram,
                r.sram_bank_utilization.to_bits()
            );
        }
    }
}
