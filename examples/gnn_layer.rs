//! Graph-neural-network layer on Capstan: the unified sparse-dense
//! application the paper motivates in §5 ("separating graph analytics and
//! linear algebra may preclude new applications, like graph neural
//! networks").
//!
//! A GCN forward pass `H' = relu(Â · (H · W))` fuses a dense GEMM into a
//! sparse-matrix × dense-matrix product (SpMM). This example shows the
//! two properties that make a vector RDA the right substrate:
//!
//! 1. **Lane occupancy**: PR-Pull starves on power-law degree skew
//!    (paper Fig. 7); SpMM rides the dense feature dimension instead.
//! 2. **Fusion**: the intermediate `X·W` stays in SpMU SRAM; a
//!    kernel-by-kernel library round-trips it through DRAM.
//!
//! ```text
//! cargo run --release --example gnn_layer
//! ```

use capstan::apps::gnn::{GcnLayer, Spmm};
use capstan::apps::pagerank::PrPull;
use capstan::apps::App;
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::core::program::Workload;
use capstan::tensor::gen::Dataset;
use capstan::tensor::DenseMatrix;

fn occupancy(wl: &Workload) -> f64 {
    let work: u64 = wl.tiles.iter().map(|t| t.lane_work).sum();
    let slots: u64 = wl.tiles.iter().map(|t| t.vectors).sum::<u64>() * 16;
    work as f64 / slots.max(1) as f64
}

fn main() {
    let graph = Dataset::WebStanford.generate_scaled(0.03);
    let features = 32;
    println!(
        "graph: {} nodes, {} edges (power-law, web-crawl structure)",
        graph.rows(),
        graph.nnz()
    );
    println!("layer: {features} -> {features} features\n");

    let cfg = CapstanConfig::paper_default();

    // 1. Lane occupancy: SpMM vs PR-Pull on the same adjacency.
    let b = DenseMatrix::from_fn(graph.cols(), features, |r, c| ((r + c) % 3) as f32 - 1.0);
    let spmm = Spmm::new(&graph, b);
    let pr = PrPull::new(&graph);
    println!("vector-slot occupancy on the same power-law adjacency:");
    println!(
        "  SpMM ({features} features): {:>5.1}%",
        occupancy(&spmm.build(&cfg)) * 100.0
    );
    println!(
        "  PR-Pull (scalar ranks): {:>5.1}%",
        occupancy(&pr.build(&cfg)) * 100.0
    );

    // 2. The full layer, fused vs unfused, on both memory systems.
    let layer = GcnLayer::with_synthetic(&graph, features, features);
    println!("\nGCN layer forward pass:");
    for (name, mem) in [("DDR4", MemoryKind::Ddr4), ("HBM2E", MemoryKind::Hbm2e)] {
        let mem_cfg = CapstanConfig::new(mem);
        let fused = capstan::core::perf::simulate(&layer.record(&mem_cfg).0, &mem_cfg);
        let unfused = capstan::core::perf::simulate(&layer.record_unfused(&mem_cfg).0, &mem_cfg);
        println!(
            "  {name:>5}: fused {:>12} cycles | unfused {:>12} cycles | fusion saves {:>4.1}%",
            fused.cycles,
            unfused.cycles,
            (1.0 - fused.cycles as f64 / unfused.cycles as f64) * 100.0
        );
    }

    // 3. Functional output: activations propagate and ReLU clips.
    let out = layer.reference();
    let active = out.as_slice().iter().filter(|&&v| v > 0.0).count();
    println!(
        "\noutput: {} x {} activations, {:.1}% past ReLU",
        out.rows(),
        out.cols(),
        active as f64 / out.as_slice().len() as f64 * 100.0
    );
    let report = layer.simulate(&cfg);
    println!("\nfused layer on HBM2E:\n{report}");
}
