//! Wall-clock timing of the SpMU hot loop (used for before/after numbers
//! in perf work; see also `crates/bench/benches/spmu.rs`).

use capstan::arch::spmu::driver::{measure_random_throughput, run_vectors};
use capstan::arch::spmu::{AccessVector, OrderingMode, SpmuConfig};
use std::time::Instant;

fn main() {
    for (name, ordering) in [
        ("unordered", OrderingMode::Unordered),
        ("addr-ordered", OrderingMode::AddressOrdered),
        ("arbitrated", OrderingMode::Arbitrated),
    ] {
        let cfg = SpmuConfig {
            ordering,
            ..Default::default()
        };
        let start = Instant::now();
        let r = measure_random_throughput(cfg, 42, 1_000, 200_000);
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "measure_random_throughput {name:<14} 201k cycles in {elapsed:.3}s  ({:.1} Mcycles/s, util {:.3})",
            0.201 / elapsed,
            r.bank_utilization
        );
    }
    let vectors: Vec<AccessVector> = (0..50_000)
        .map(|i| {
            AccessVector::reads(
                &(0..16u32)
                    .map(|l| (i * 97 + l * 13) % 65_536)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let start = Instant::now();
    let r = run_vectors(SpmuConfig::default(), &vectors);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "run_vectors 50k vectors: {} cycles in {elapsed:.3}s ({:.1} Mcycles/s)",
        r.cycles,
        r.cycles as f64 / 1e6 / elapsed
    );
}
