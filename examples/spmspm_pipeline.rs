//! Gustavson sparse matrix-matrix multiplication through Capstan's
//! bit-vector union/intersection pipeline (paper §2.4), with the scanner
//! statistics that drive the Fig. 6 sensitivity results.
//!
//! ```text
//! cargo run --release --example spmspm_pipeline
//! ```

use capstan::apps::spmspm::SpMSpM;
use capstan::apps::App;
use capstan::arch::scanner::BitVecScanner;
use capstan::core::config::CapstanConfig;
use capstan::tensor::gen::Dataset;

fn main() {
    for dataset in [Dataset::SpaceStation4, Dataset::Qc324, Dataset::Mbeacxc] {
        let m = dataset.generate_scaled(1.0);
        let app = SpMSpM::squared(&m);
        let cfg = CapstanConfig::paper_default();
        let (wl, c) = app.record(&cfg);
        let emitted: u64 = wl.tiles.iter().map(|t| t.scan_emitted).sum();
        let scan_cycles: u64 = wl.tiles.iter().map(|t| t.scan_cycles).sum();
        println!(
            "\n=== {}^2: {}x{} * itself -> {} output non-zeros ===",
            dataset.spec().name,
            m.rows(),
            m.cols(),
            c.nnz()
        );
        println!(
            "scanner: {} elements in {} cycles = {:.1} intersections/cycle (peak 16)",
            emitted,
            scan_cycles,
            emitted as f64 / scan_cycles.max(1) as f64
        );
        let report = app.simulate(&cfg);
        println!("{report}");

        // Narrow the scan-output vectorization like Fig. 6c.
        for outputs in [1usize, 4, 16] {
            let mut narrow = cfg;
            narrow.scanner = BitVecScanner::new(256, outputs);
            let r = app.simulate(&narrow);
            println!(
                "  scan outputs/cycle = {outputs:>2}: {:>12} cycles ({:.2}x)",
                r.cycles,
                r.cycles as f64 / report.cycles as f64
            );
        }
    }
    println!();
    println!("Paper §4.3: \"Only outputting eight elements per cycle has a");
    println!("significant performance impact on SpMSpM, because its datasets");
    println!("are relatively dense.\"");
}
