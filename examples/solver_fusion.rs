//! Kernel fusion study: BiCGStab as one fused streaming pipeline on
//! Capstan versus an unfused kernel sequence on a GPU-style platform
//! (paper §4.4: "the inter-kernel overhead causes up to a 3x slowdown
//! relative to sparse SpMV alone").
//!
//! ```text
//! cargo run --release --example solver_fusion
//! ```

use capstan::apps::bicgstab::BiCgStab;
use capstan::apps::App;
use capstan::baselines::gpu;
use capstan::core::config::CapstanConfig;
use capstan::tensor::gen::Dataset;
use capstan::tensor::Csr;

fn main() {
    let m = Dataset::Trefethen20000.generate_scaled(0.1);
    let a = Csr::from_coo(&m);
    println!("system: {}x{}, {} non-zeros", a.rows(), a.cols(), a.nnz());

    // Capstan: the whole iteration is one fused pipeline; the dense
    // vectors never leave on-chip SRAM.
    let mut solver = BiCgStab::new(&m);
    solver.iterations = 10;
    let cfg = CapstanConfig::paper_default();
    let (wl, result) = solver.record(&cfg);
    let report = solver.simulate(&cfg);
    println!("\nCapstan (fused): {report}");
    println!(
        "residual {:.3e} -> {:.3e} over {} iterations",
        result.residuals.first().unwrap(),
        result.residuals.last().unwrap(),
        result.residuals.len()
    );
    let streamed: u64 = wl.tiles.iter().map(|t| t.dram_stream_bytes).sum();
    println!(
        "DRAM streamed: {:.2} MiB (matrix-only: the BLAS1 vectors stay on chip)",
        streamed as f64 / (1024.0 * 1024.0)
    );

    // GPU-style unfused execution: every step is its own kernel launch.
    let fused_spmv_only = 2.0 * gpu::spmv_kernel(a.nnz(), a.rows()).seconds();
    let unfused = gpu::bicgstab_iteration_seconds(a.nnz(), a.rows());
    println!("\nV100-style analytic model, one iteration:");
    println!(
        "  2x SpMV alone:            {:.2} us",
        fused_spmv_only * 1e6
    );
    println!("  full unfused iteration:   {:.2} us", unfused * 1e6);
    println!(
        "  inter-kernel overhead:    {:.2}x (paper: \"up to a 3x slowdown\")",
        unfused / fused_spmv_only
    );
}
