//! One-off capture of cycle-level memory-mode golden values (used to pin
//! `MemTiming::CycleLevel` in `tests/determinism_golden.rs`): the banked
//! channel's completion stream on two memory configs, and an
//! atomic-heavy PageRank simulate under the cycle-level mode — with
//! both synthetic and recorded scattered addressing
//! (`CapstanConfig::mem_addresses`).

use capstan::apps::App;
use capstan::arch::spmu::driver::TraceRng;
use capstan::core::config::{CapstanConfig, MemAddressing, MemTiming, MemoryKind};
use capstan::core::perf::simulate;
use capstan::sim::channel::MemChannel;
use capstan::sim::dram::{BankTiming, BankedDramChannel, BurstRequest, DramModel, BURST_BYTES};
use capstan::tensor::gen::Dataset;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv(hash: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Drives a banked channel with a deterministic mixed stream (sequential
/// runs interrupted by scattered bursts), hashing every completion's
/// `(tag, cycle)` in order.
fn banked_stream(kind: capstan::sim::dram::MemoryKind, seed: u64) {
    let model = DramModel::new(kind);
    let mut ch = BankedDramChannel::new(model, BankTiming::for_model(&model));
    let mut rng = TraceRng::new(seed);
    let mut hash = FNV_OFFSET;
    let mut pushed = 0u64;
    let mut completed = 0u64;
    let mut seq = 0u64;
    let total = 3000u64;
    for _ in 0..2_000_000u64 {
        if pushed < total && rng.below(3) != 0 {
            let burst = if rng.below(4) == 0 {
                rng.below(1 << 16)
            } else {
                seq += 1;
                seq
            };
            let req = BurstRequest {
                addr: burst * BURST_BYTES,
                is_write: rng.below(4) == 0,
                tag: pushed,
            };
            if ch.push(req).is_ok() {
                pushed += 1;
            }
        }
        for c in ch.tick() {
            fnv(&mut hash, c.tag);
            fnv(&mut hash, c.cycle);
            completed += 1;
        }
        if pushed == total && ch.is_idle() {
            break;
        }
    }
    let s = ch.stats();
    println!(
        "banked {kind:?} seed={seed:#X}: completions={completed} stream_hash=0x{hash:016X} \
         cycle={} row_hits={} row_conflicts={} contention={} busy={} peak_q={}",
        ch.cycle(),
        s.row_hits,
        s.row_conflicts,
        s.contention_cycles,
        s.bank_busy_cycles,
        s.peak_bank_queue
    );
}

fn main() {
    use capstan::sim::dram::MemoryKind as SimMem;
    banked_stream(SimMem::Ddr4, 0x00C1_C1E0);
    banked_stream(SimMem::Hbm2e, 0x00C1_C1E1);

    // Atomic-heavy end-to-end pin: edge-centric PageRank with the
    // shuffle network removed (Table 11's "None" column) pushes every
    // cross-tile update through DRAM atomics, exercising the AG inside
    // the cycle-level memory mode.
    let g = Dataset::WebStanford.generate_scaled(0.02);
    let app = capstan::apps::pagerank::PrEdge::new(&g);
    let mk = |memory, addresses| {
        let mut cfg = CapstanConfig::new(memory);
        cfg.shuffle = None;
        cfg.mem_timing = MemTiming::CycleLevel;
        cfg.mem_addresses = addresses;
        cfg
    };
    let wl = app.build(&mk(MemoryKind::Hbm2e, MemAddressing::Synthetic));
    for (name, cfg) in [
        ("hbm2e", mk(MemoryKind::Hbm2e, MemAddressing::Synthetic)),
        ("ddr4", mk(MemoryKind::Ddr4, MemAddressing::Synthetic)),
        ("hbm2e+rec", mk(MemoryKind::Hbm2e, MemAddressing::Recorded)),
        ("ddr4+rec", mk(MemoryKind::Ddr4, MemAddressing::Recorded)),
    ] {
        let r = simulate(&wl, &cfg);
        let m = r.mem.expect("cycle mode surfaces stats");
        println!(
            "simulate pr_edge_atomics/{name}: cycles={} active={} scan={} ls={} vl={} imb={} \
             net={} sram={} dram={} util_bits=0x{:016X} memcycles={} row_conflicts={} \
             contention={} ag_fetched={} ag_written={}",
            r.cycles,
            r.breakdown.active,
            r.breakdown.scan,
            r.breakdown.load_store,
            r.breakdown.vector_length,
            r.breakdown.imbalance,
            r.breakdown.network,
            r.breakdown.sram,
            r.breakdown.dram,
            r.sram_bank_utilization.to_bits(),
            m.cycles,
            m.row_conflicts,
            m.contention_cycles,
            m.ag_bursts_fetched,
            m.ag_bursts_written
        );
    }
}
