//! Quickstart: build a sparse matrix, run SpMV on a simulated Capstan,
//! and inspect the cycle count and stall breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use capstan::apps::spmv::CsrSpmv;
use capstan::apps::App;
use capstan::core::config::{CapstanConfig, MemoryKind};
use capstan::tensor::gen::Dataset;

fn main() {
    // 1. A synthetic stand-in for the paper's ckt11752_dc_1 circuit
    //    matrix, at 10% of its published size (drop in a real .mtx file
    //    via capstan::tensor::mm if you have one).
    let matrix = Dataset::Ckt11752.generate_scaled(0.1);
    println!(
        "matrix: {}x{}, {} non-zeros ({:.3}% dense)",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz(),
        matrix.density() * 100.0
    );

    // 2. CSR SpMV, mapped onto Capstan's declarative loop nests.
    let app = CsrSpmv::new(&matrix);

    // 3. Simulate on the paper's primary configuration (HBM2E) and on
    //    DDR4 for comparison.
    for memory in [MemoryKind::Hbm2e, MemoryKind::Ddr4] {
        let cfg = CapstanConfig::new(memory);
        let report = app.simulate(&cfg);
        println!("\n--- {} ---", memory.name());
        println!("{report}");
    }

    // 4. The recorded execution is functionally correct: compare the
    //    simulated result against the CPU reference.
    let cfg = CapstanConfig::paper_default();
    let (_, y) = app.record(&cfg);
    let reference = app.reference();
    let err = capstan::apps::common::rel_l2_error(&y, &reference);
    println!("\nfunctional check: relative L2 error vs CPU reference = {err:.2e}");
    assert!(err < 1e-5);
    println!("ok");
}
